//! Fig. 6 — energy savings of the frequency-scaling tier across all nine
//! workloads.
//!
//! Three views, as in the paper:
//! * **6a** — GPU energy saving vs *best-performance* (paper: 5.97 % avg,
//!   up to 14.53 %);
//! * **6b** — *dynamic* GPU energy saving (idle energy subtracted; paper:
//!   29.2 % avg with 2.95 % longer execution);
//! * **6c** — whole-system saving when the CPU is also throttled during
//!   its GPU-waits, via the paper's emulation (paper: 12.48 % avg).

use super::{pct, signed_pct, ExperimentOutput};
use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_runtime::RunConfig;
use greengpu_sim::Table;
use greengpu_workloads::registry;

/// Per-workload scaling results.
pub struct ScalingRow {
    /// Workload name.
    pub name: &'static str,
    /// 6a: GPU energy saving fraction.
    pub gpu_saving: f64,
    /// 6b: dynamic GPU energy saving fraction.
    pub dynamic_saving: f64,
    /// Execution-time delta fraction (positive = slower).
    pub time_delta: f64,
    /// 6c: whole-system saving with the CPU-throttle emulation.
    pub emulated_saving: f64,
}

/// Runs the scaling tier against best-performance for every workload.
pub fn compute(seed: u64) -> Vec<ScalingRow> {
    registry::TABLE2_NAMES
        .iter()
        .map(|name| {
            let mut base_wl = registry::by_name(name, seed).expect("registered");
            let mut ours_wl = registry::by_name(name, seed).expect("registered");
            let base = run_best_performance_with(base_wl.as_mut(), RunConfig::sweep());
            let ours = run_with_config(ours_wl.as_mut(), GreenGpuConfig::scaling_only(), RunConfig::sweep());

            let gpu_saving = 1.0 - ours.gpu_energy_j / base.gpu_energy_j;
            // Fig. 6b subtracts a constant idle reference — the card's
            // idle draw at the best-performance clocks — from both runs
            // ("calculated by subtracting the idle energy from the runtime
            // energy").
            let spec = base.platform.gpu().spec();
            let idle_ref_w = spec.power_w(1.0, 1.0, 0.0, 0.0);
            let dyn_ours = ours.gpu_dynamic_energy_j(idle_ref_w);
            let dyn_base = base.gpu_dynamic_energy_j(idle_ref_w);
            let dynamic_saving = 1.0 - dyn_ours / dyn_base;
            let time_delta = ours.total_time.as_secs_f64() / base.total_time.as_secs_f64() - 1.0;
            // 6c: the paper's emulation replaces CPU spin-wait energy with
            // the lowest-P-state idle draw, on top of GPU scaling.
            let emulated_saving = 1.0 - ours.emulated_cpu_throttle_energy_j() / base.total_energy_j();
            ScalingRow {
                name,
                gpu_saving,
                dynamic_saving,
                time_delta,
                emulated_saving,
            }
        })
        .collect()
}

/// Runs Fig. 6 and renders the three views.
pub fn run(seed: u64) -> ExperimentOutput {
    let rows = compute(seed);
    let mut t = Table::new(
        "Fig. 6 — energy savings of GPU frequency scaling vs best-performance",
        &[
            "workload",
            "6a GPU saving",
            "6b dynamic saving",
            "time delta",
            "6c CPU/GPU saving (emulated)",
        ],
    );
    for r in &rows {
        t.row(&[
            r.name.to_string(),
            pct(r.gpu_saving),
            pct(r.dynamic_saving),
            signed_pct(r.time_delta),
            pct(r.emulated_saving),
        ]);
    }
    let n = rows.len() as f64;
    let avg = |f: fn(&ScalingRow) -> f64| rows.iter().map(f).sum::<f64>() / n;
    let avg_gpu = avg(|r| r.gpu_saving);
    let avg_dyn = avg(|r| r.dynamic_saving);
    let avg_time = avg(|r| r.time_delta);
    let avg_emu = avg(|r| r.emulated_saving);
    let max_gpu = rows.iter().map(|r| r.gpu_saving).fold(f64::MIN, f64::max);
    t.row(&[
        "average".to_string(),
        pct(avg_gpu),
        pct(avg_dyn),
        signed_pct(avg_time),
        pct(avg_emu),
    ]);

    ExperimentOutput {
        id: "fig6",
        title: "Energy saving percentage of the frequency-scaling tier, all workloads",
        tables: vec![t],
        notes: vec![
            format!(
                "6a: average GPU energy saving {} (max {}); paper reports 5.97% average, up to 14.53%.",
                pct(avg_gpu),
                pct(max_gpu)
            ),
            format!(
                "6b: average dynamic saving {} with {} execution time; paper reports 29.2% with +2.95%.",
                pct(avg_dyn),
                signed_pct(avg_time)
            ),
            format!("6c: average emulated CPU+GPU saving {}; paper reports 12.48%.", pct(avg_emu)),
            format!(
                "Ordering check: low-utilization workloads (PF {}, lud {}) save the most; saturated bfs ({}) the least — the paper's stated pattern.",
                pct(rows.iter().find(|r| r.name == "PF").unwrap().gpu_saving),
                pct(rows.iter().find(|r| r.name == "lud").unwrap().gpu_saving),
                pct(rows.iter().find(|r| r.name == "bfs").unwrap().gpu_saving)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rows() -> Vec<ScalingRow> {
        compute(1)
    }

    #[test]
    fn every_workload_saves_gpu_energy() {
        for r in rows() {
            assert!(r.gpu_saving > 0.0, "{} saving {}", r.name, r.gpu_saving);
        }
    }

    #[test]
    fn average_savings_are_in_the_paper_band() {
        let rs = rows();
        let n = rs.len() as f64;
        let avg_gpu = rs.iter().map(|r| r.gpu_saving).sum::<f64>() / n;
        // Paper: 5.97% average — accept the 3-12% band for the simulated
        // card.
        assert!((0.03..0.12).contains(&avg_gpu), "avg GPU saving {avg_gpu}");
        let max = rs.iter().map(|r| r.gpu_saving).fold(f64::MIN, f64::max);
        assert!((0.06..0.25).contains(&max), "max GPU saving {max}");
    }

    #[test]
    fn time_overhead_is_small() {
        // Paper: +2.95% average execution time.
        let rs = rows();
        let avg_time = rs.iter().map(|r| r.time_delta).sum::<f64>() / rs.len() as f64;
        assert!(avg_time < 0.06, "avg time delta {avg_time}");
        for r in &rs {
            assert!(r.time_delta < 0.12, "{} time delta {}", r.name, r.time_delta);
        }
    }

    #[test]
    fn dynamic_savings_exceed_gross_savings() {
        // Subtracting the idle floor always amplifies the saving fraction.
        for r in rows() {
            assert!(
                r.dynamic_saving > r.gpu_saving,
                "{}: dynamic {} <= gross {}",
                r.name,
                r.dynamic_saving,
                r.gpu_saving
            );
        }
    }

    #[test]
    fn emulated_cpu_throttle_adds_savings() {
        let rs = rows();
        let avg_emu = rs.iter().map(|r| r.emulated_saving).sum::<f64>() / rs.len() as f64;
        let avg_gpu_sys = rs.iter().map(|r| r.gpu_saving).sum::<f64>() / rs.len() as f64;
        // Whole-system emulated saving should exceed the GPU-only view of
        // the system (paper: 12.48% vs 5.97%).
        assert!(avg_emu > avg_gpu_sys * 0.8, "emulated {avg_emu} vs gpu {avg_gpu_sys}");
        assert!((0.05..0.30).contains(&avg_emu), "avg emulated saving {avg_emu}");
    }

    #[test]
    fn low_utilization_workloads_save_more_than_bfs() {
        let rs = rows();
        let get = |n: &str| rs.iter().find(|r| r.name == n).unwrap().gpu_saving;
        assert!(get("PF") > get("bfs"), "PF {} vs bfs {}", get("PF"), get("bfs"));
        assert!(get("lud") > get("bfs"), "lud {} vs bfs {}", get("lud"), get("bfs"));
    }
}
