//! Serving — the multi-tenant SLO/carbon-aware dispatch sweep.
//!
//! Not a paper figure: the ICPP 2012 testbed serves one anonymous job
//! stream. This experiment drives the `greengpu-tenancy` +
//! `greengpu-cluster` serving layer — named tenants with their own
//! arrival processes (diurnal, bursty, batch-window), SLO classes
//! (latency-, throughput-, best-effort), and a seeded carbon-intensity
//! signal — across tenant mix × fleet budget × dispatcher. The nodes
//! run the deadline-aware Tier-2 selector with a time budget derived
//! from the latency tenant's slack ([`SloClass::deadline_params`]), so
//! latency-bound jobs dispatch immediately under slack-derived frequency
//! caps while the carbon-aware dispatcher shifts best-effort work into
//! green windows. Three tables come out:
//!
//! 1. the per-tenant summary (admission, completion, deadline-miss
//!    rate, turnaround, energy/job, and carbon-weighted energy/job per
//!    sweep cell);
//! 2. the dispatcher comparison (carbon-blind vs carbon-aware per cell:
//!    best-effort carbon intensity per job, latency-tenant miss rate,
//!    deferral counts, and the min/max completion-rate fairness ratio);
//! 3. a representative per-interval serving trace (carbon intensity,
//!    green windows, deferral-queue depth).
//!
//! The acceptance cell: on the reference mix, carbon-aware dispatch
//! must strictly reduce the best-effort tenant's carbon-weighted energy
//! per completed job without raising the latency tenant's deadline-miss
//! rate — asserted in this module's tests.
//!
//! Everything derives from the one seed, so the CSVs are byte-identical
//! across runs and engines.

use super::ExperimentOutput;
use greengpu_cluster::{
    run_fleet, ArrivalProcess, CarbonSignal, EngineKind, FleetConfig, FleetReport, NodeConfig, Policy, PolicySpec,
    ServingConfig, SloClass,
};
use greengpu_sim::{table::fnum, SimDuration, Table};

/// Fleet size for the sweep.
pub const NODES: usize = 4;
/// Budget fractions of aggregate peak-pair power swept.
pub const BUDGET_FRACS: [f64; 2] = [0.70, 0.85];
/// Sweep horizon, seconds.
pub const HORIZON_S: u64 = 200;
/// The fleet's job quantum (see `FleetConfig::from_nodes`), used to
/// derive the deadline selector's time budget from the latency slack.
const TARGET_JOB_S: f64 = 8.0;

const TENANT_HEADERS: [&str; 13] = [
    // lint:contract(tenant_summary_columns)
    "mix",
    "budget_frac",
    "dispatcher",
    "tenant",
    "slo",
    "admitted",
    "rejected",
    "completed",
    "deadline_miss_rate",
    "completion_rate",
    "mean_turnaround_s",
    "gpu_energy_per_job_j",
    "carbon_weighted_j_per_job",
];

const COMPARISON_HEADERS: [&str; 11] = [
    "mix",
    "budget_frac",
    "dispatcher",
    "completed",
    "latency_miss_rate",
    "be_carbon_per_job",
    "be_completed",
    "jobs_deferred",
    "jobs_released",
    "deferred_pending",
    "fairness",
];

/// Stable dispatcher label for the CSV rows.
fn dispatcher_label(aware: bool) -> &'static str {
    if aware {
        "carbon-aware"
    } else {
        "carbon-blind"
    }
}

/// The tenant mixes swept: the three-tenant reference population and a
/// batch-heavy variant (doubled best-effort arrival rate), which is the
/// regime where green-window shifting has the most work to move.
fn mixes(seed: u64, horizon_s: f64, size_scale: f64) -> Vec<(&'static str, ServingConfig)> {
    let reference = ServingConfig::reference_mix(seed, horizon_s, size_scale);
    let mut batch_heavy = reference.clone();
    batch_heavy.tenants[2].arrival = ArrivalProcess::Batch {
        rate_per_s: 0.24,
        start_s: 0.0,
        end_s: 0.8 * horizon_s,
    };
    vec![("reference", reference), ("batch-heavy", batch_heavy)]
}

/// A serving fleet: `NODES` default nodes whose Tier-2 selector is the
/// deadline policy with a time budget derived from the latency tenant's
/// slack — the SLO-to-DVFS seam — plus the given serving layer, driven
/// by the event engine.
fn serving_cfg(serving: ServingConfig, budget_frac: f64, horizon: SimDuration, seed: u64) -> FleetConfig {
    let freq_policy = serving
        .tenants
        .iter()
        .find_map(|t| t.slo.deadline_params(TARGET_JOB_S))
        .map_or_else(PolicySpec::default, PolicySpec::Deadline);
    let nodes: Vec<NodeConfig> = (0..NODES)
        .map(|_| NodeConfig::default_node().with_freq_policy(freq_policy.clone()))
        .collect();
    FleetConfig::from_nodes(nodes, budget_frac, Policy::LeastLoaded, horizon, seed)
        .with_serving(serving)
        .with_engine(EngineKind::EventDriven)
}

/// Per-tenant slice of one run's completions.
struct TenantStats {
    admitted: u64,
    rejected: u64,
    completed: u64,
    with_deadline: u64,
    missed: u64,
    turnaround_sum_s: f64,
    energy_sum_j: f64,
    carbon_sum: f64,
}

/// Splits a report into per-tenant stats; carbon-weighted energy is the
/// job's GPU energy times the signal's exact mean intensity over its
/// service window.
fn tenant_stats(r: &FleetReport, carbon: &CarbonSignal) -> Vec<TenantStats> {
    let n = r.tenant_names.len().max(1);
    let mut out: Vec<TenantStats> = (0..n)
        .map(|i| TenantStats {
            admitted: r.admitted_by_tenant.get(i).copied().unwrap_or(0),
            rejected: r.rejected_by_tenant.get(i).copied().unwrap_or(0),
            completed: 0,
            with_deadline: 0,
            missed: 0,
            turnaround_sum_s: 0.0,
            energy_sum_j: 0.0,
            carbon_sum: 0.0,
        })
        .collect();
    for rec in &r.completed {
        let Some(s) = out.get_mut(rec.spec.tenant) else {
            continue;
        };
        s.completed += 1;
        if rec.spec.deadline.is_some() {
            s.with_deadline += 1;
            if rec.missed_deadline {
                s.missed += 1;
            }
        }
        s.turnaround_sum_s += rec.turnaround_s();
        s.energy_sum_j += rec.gpu_energy_j;
        let started_s = rec.started.saturating_since(greengpu_sim::SimTime::ZERO).as_secs_f64();
        let finished_s = rec.finished.saturating_since(greengpu_sim::SimTime::ZERO).as_secs_f64();
        s.carbon_sum += rec.gpu_energy_j * carbon.mean_over(started_s, finished_s);
    }
    out
}

impl TenantStats {
    fn miss_rate(&self) -> f64 {
        if self.with_deadline == 0 {
            0.0
        } else {
            self.missed as f64 / self.with_deadline as f64
        }
    }

    fn completion_rate(&self) -> f64 {
        if self.admitted == 0 {
            0.0
        } else {
            self.completed as f64 / self.admitted as f64
        }
    }

    fn per_job(&self, sum: f64) -> f64 {
        if self.completed == 0 {
            0.0
        } else {
            sum / self.completed as f64
        }
    }
}

/// Min/max completion-rate ratio across tenants — 1.0 is perfectly even
/// service, 0.0 means some tenant is starved.
fn fairness(stats: &[TenantStats]) -> f64 {
    let rates: Vec<f64> = stats.iter().map(TenantStats::completion_rate).collect();
    let lo = rates.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = rates.iter().copied().fold(0.0f64, f64::max);
    if hi <= 0.0 {
        0.0
    } else {
        lo / hi
    }
}

/// The metrics the acceptance criterion is stated over.
pub struct CellMetrics {
    /// Latency tenant's deadline-miss rate over completed jobs.
    pub latency_miss_rate: f64,
    /// Best-effort tenant's carbon-weighted GPU energy per completed job.
    pub be_carbon_per_job: f64,
    /// Best-effort jobs completed.
    pub be_completed: u64,
    /// Jobs the dispatcher parked for a green window.
    pub jobs_deferred: u64,
}

/// Runs one sweep cell and reduces it to the acceptance metrics.
/// `latency`/`best_effort` are tenant indices in the serving config.
pub fn run_cell(serving: &ServingConfig, budget_frac: f64, seed: u64) -> CellMetrics {
    let horizon = SimDuration::from_secs(HORIZON_S);
    let r = run_fleet(&serving_cfg(serving.clone(), budget_frac, horizon, seed));
    let stats = tenant_stats(&r, &serving.carbon);
    let latency = serving
        .tenants
        .iter()
        .position(|t| matches!(t.slo, SloClass::LatencyBound { .. }))
        .unwrap_or(0);
    let best_effort = serving.tenants.iter().position(|t| t.slo.deferrable()).unwrap_or(0);
    CellMetrics {
        latency_miss_rate: stats[latency].miss_rate(),
        be_carbon_per_job: stats[best_effort].per_job(stats[best_effort].carbon_sum),
        be_completed: stats[best_effort].completed,
        jobs_deferred: r.jobs_deferred,
    }
}

fn tenant_rows(
    table: &mut Table,
    mix: &str,
    budget_frac: f64,
    aware: bool,
    serving: &ServingConfig,
    r: &FleetReport,
    stats: &[TenantStats],
) {
    for (i, s) in stats.iter().enumerate() {
        table.row(&[
            mix.to_string(),
            fnum(budget_frac, 2),
            dispatcher_label(aware).to_string(),
            r.tenant_names.get(i).cloned().unwrap_or_default(),
            serving.tenants.get(i).map_or("", |t| t.slo.name()).to_string(),
            s.admitted.to_string(),
            s.rejected.to_string(),
            s.completed.to_string(),
            fnum(s.miss_rate(), 4),
            fnum(s.completion_rate(), 4),
            fnum(s.per_job(s.turnaround_sum_s), 3),
            fnum(s.per_job(s.energy_sum_j), 1),
            fnum(s.per_job(s.carbon_sum), 1),
        ]);
    }
}

fn comparison_row(
    table: &mut Table,
    mix: &str,
    budget_frac: f64,
    aware: bool,
    serving: &ServingConfig,
    r: &FleetReport,
    stats: &[TenantStats],
) {
    let latency = serving
        .tenants
        .iter()
        .position(|t| matches!(t.slo, SloClass::LatencyBound { .. }))
        .unwrap_or(0);
    let best_effort = serving.tenants.iter().position(|t| t.slo.deferrable()).unwrap_or(0);
    table.row(&[
        mix.to_string(),
        fnum(budget_frac, 2),
        dispatcher_label(aware).to_string(),
        r.completed.len().to_string(),
        fnum(stats[latency].miss_rate(), 4),
        fnum(stats[best_effort].per_job(stats[best_effort].carbon_sum), 1),
        stats[best_effort].completed.to_string(),
        r.jobs_deferred.to_string(),
        r.jobs_released.to_string(),
        r.deferred_pending_at_end.to_string(),
        fnum(fairness(stats), 3),
    ]);
}

/// The full sweep behind `--experiment serving`.
pub fn run(seed: u64) -> ExperimentOutput {
    let horizon = SimDuration::from_secs(HORIZON_S);
    let size_scale =
        FleetConfig::homogeneous(NODES, BUDGET_FRACS[1], Policy::LeastLoaded, horizon, seed).reference_size_scale();

    let mut tenants_table = Table::new(
        format!("Per-tenant serving summary — {NODES} nodes, {HORIZON_S} s horizon, event engine"),
        &TENANT_HEADERS,
    );
    let mut comparison = Table::new(
        "Dispatcher comparison — carbon-blind vs carbon-aware per sweep cell",
        &COMPARISON_HEADERS,
    );
    // The acceptance pair: (blind, aware) on the reference mix at the
    // loose budget.
    let mut accept_blind: Option<(f64, f64)> = None;
    let mut accept_aware: Option<(f64, f64, u64)> = None;

    for (mix_name, serving) in mixes(seed, HORIZON_S as f64, size_scale) {
        for &budget_frac in &BUDGET_FRACS {
            for aware in [false, true] {
                let mut s = serving.clone();
                s.carbon_aware = aware;
                let r = run_fleet(&serving_cfg(s.clone(), budget_frac, horizon, seed));
                let stats = tenant_stats(&r, &s.carbon);
                tenant_rows(&mut tenants_table, mix_name, budget_frac, aware, &s, &r, &stats);
                comparison_row(&mut comparison, mix_name, budget_frac, aware, &s, &r, &stats);
                if mix_name == "reference" && budget_frac == BUDGET_FRACS[1] {
                    let miss = stats[0].miss_rate();
                    let carbon = stats[2].per_job(stats[2].carbon_sum);
                    if aware {
                        accept_aware = Some((miss, carbon, r.jobs_deferred));
                    } else {
                        accept_blind = Some((miss, carbon));
                    }
                }
            }
        }
    }

    // Table 3: one carbon-aware reference run's serving trace.
    let trace_serving = mixes(seed, HORIZON_S as f64, size_scale).swap_remove(0).1;
    let trace_run = run_fleet(&serving_cfg(trace_serving, BUDGET_FRACS[1], horizon, seed));
    let trace = trace_run.serving_trace.to_table(&format!(
        "Serving trace — reference mix, {} budget, carbon-aware, {HORIZON_S} s",
        fnum(BUDGET_FRACS[1], 2)
    ));

    let mut notes = Vec::new();
    if let (Some((blind_miss, blind_carbon)), Some((aware_miss, aware_carbon, deferred))) = (accept_blind, accept_aware)
    {
        notes.push(format!(
            "carbon-aware dispatch cuts the best-effort tenant's carbon-weighted energy per job \
             from {} to {} ({}) on the reference mix at the {} budget by deferring {} jobs into \
             green windows, while the latency tenant's deadline-miss rate moves {} -> {} (never \
             up — latency-bound jobs are exempt from deferral).",
            fnum(blind_carbon, 1),
            fnum(aware_carbon, 1),
            super::signed_pct(aware_carbon / blind_carbon - 1.0),
            fnum(BUDGET_FRACS[1], 2),
            deferred,
            fnum(blind_miss, 4),
            fnum(aware_miss, 4),
        ));
    }
    notes.push(
        "latency-bound jobs dispatch immediately under slack-derived frequency caps: every node \
         runs the deadline-aware Tier-2 selector with its time budget derived from the latency \
         tenant's mean slack (SloClass::deadline_params)."
            .to_string(),
    );
    notes.push(
        "conservation holds in every cell: admitted == completed + dead-lettered + still \
         deferred + in flight (see crates/cluster/tests/serving_scenario.rs)."
            .to_string(),
    );

    ExperimentOutput {
        id: "serving",
        title: "Multi-tenant serving: SLO tiers and carbon-aware dispatch",
        tables: vec![tenants_table, comparison, trace],
        notes,
    }
}

/// A single small serving fleet for the CI smoke: `nodes` nodes at 0.80
/// budget serving the reference tenant mix carbon-aware for `seconds`
/// simulated seconds, driven by `engine` (the CI byte-compares engines
/// on this output). Emits the per-tenant summary and the serving trace.
pub fn run_custom(seed: u64, nodes: usize, seconds: u64, engine: EngineKind) -> ExperimentOutput {
    let horizon = SimDuration::from_secs(seconds);
    let base = FleetConfig::homogeneous(nodes, 0.80, Policy::LeastLoaded, horizon, seed);
    let serving = ServingConfig::reference_mix(seed, seconds as f64, base.reference_size_scale());
    let cfg = base.with_serving(serving.clone()).with_engine(engine);
    let r = run_fleet(&cfg);
    let stats = tenant_stats(&r, &serving.carbon);
    let mut summary = Table::new(
        format!("Serving smoke — {nodes} nodes, 0.80 budget, {seconds} s"),
        &TENANT_HEADERS,
    );
    tenant_rows(&mut summary, "reference", 0.80, true, &serving, &r, &stats);
    let trace = r.serving_trace.to_table("Serving smoke — per-interval serving trace");
    ExperimentOutput {
        id: "serving",
        title: "Multi-tenant serving (smoke configuration)",
        tables: vec![summary, trace],
        notes: vec![format!(
            "smoke: {} completed across {} tenants, {} deferred / {} released, {} still parked \
             at the horizon.",
            r.completed.len(),
            r.tenant_names.len(),
            r.jobs_deferred,
            r.jobs_released,
            r.deferred_pending_at_end,
        )],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The acceptance cell: carbon-aware dispatch strictly reduces the
    /// best-effort tenant's carbon-weighted energy per job without
    /// raising the latency tenant's deadline-miss rate.
    #[test]
    fn carbon_aware_beats_blind_in_the_reference_cell() {
        let horizon = SimDuration::from_secs(HORIZON_S);
        let scale = FleetConfig::homogeneous(
            NODES,
            BUDGET_FRACS[1],
            Policy::LeastLoaded,
            horizon,
            super::super::DEFAULT_SEED,
        )
        .reference_size_scale();
        let reference = mixes(super::super::DEFAULT_SEED, HORIZON_S as f64, scale)
            .swap_remove(0)
            .1;
        let aware = run_cell(&reference, BUDGET_FRACS[1], super::super::DEFAULT_SEED);
        let blind = run_cell(&reference.clone().blind(), BUDGET_FRACS[1], super::super::DEFAULT_SEED);
        assert!(aware.jobs_deferred > 0, "the aware cell must actually defer work");
        assert!(blind.jobs_deferred == 0);
        assert!(aware.be_completed > 0 && blind.be_completed > 0);
        assert!(
            aware.be_carbon_per_job < blind.be_carbon_per_job,
            "carbon-aware must strictly reduce best-effort carbon-weighted energy/job: \
             aware {} vs blind {}",
            aware.be_carbon_per_job,
            blind.be_carbon_per_job,
        );
        assert!(
            aware.latency_miss_rate <= blind.latency_miss_rate,
            "carbon-aware must not raise the latency tenant's miss rate: aware {} vs blind {}",
            aware.latency_miss_rate,
            blind.latency_miss_rate,
        );
    }

    #[test]
    fn smoke_configuration_is_deterministic_and_serves_tenants() {
        let a = run_custom(7, 3, 60, EngineKind::Serial);
        let b = run_custom(7, 3, 60, EngineKind::Parallel { workers: 2 });
        let csv = |o: &ExperimentOutput| o.tables.iter().map(Table::to_csv).collect::<Vec<_>>();
        assert_eq!(
            csv(&a),
            csv(&b),
            "same seed must reproduce the smoke bytes, engine-independently"
        );
        assert_eq!(a.tables.len(), 2);
        // Three tenant rows in the summary.
        assert_eq!(a.tables[0].to_csv().lines().count(), 4);
        // 60 one-second intervals of serving trace.
        assert_eq!(a.tables[1].to_csv().lines().count(), 61);
    }

    #[test]
    fn fairness_is_min_over_max_completion_rate() {
        let s = |admitted, completed| TenantStats {
            admitted,
            rejected: 0,
            completed,
            with_deadline: 0,
            missed: 0,
            turnaround_sum_s: 0.0,
            energy_sum_j: 0.0,
            carbon_sum: 0.0,
        };
        assert!((fairness(&[s(10, 5), s(10, 10)]) - 0.5).abs() < 1e-12);
        assert!((fairness(&[s(10, 10), s(4, 4)]) - 1.0).abs() < 1e-12);
        assert_eq!(fairness(&[s(10, 0), s(10, 0)]), 0.0);
    }
}
