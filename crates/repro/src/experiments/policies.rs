//! Head-to-head sweep of the pluggable Tier-2 frequency policies: the
//! paper's WMA against the switching-aware bandits (and their no-penalty
//! ablations) and the deadline-aware selector, on the same workloads,
//! seeds, and testbed.
//!
//! Three tables:
//!
//! 1. **Head-to-head** (policy × workload): energy, time, EDP, switch
//!    count, and regret against the static-best pair in hindsight.
//! 2. **Switching ablation**: each bandit with its switching-cost
//!    penalty + hysteresis vs the same learner with both disabled — the
//!    penalty must buy strictly fewer reclocks.
//! 3. **Deadline slack sweep**: the deadline-aware selector across time
//!    budgets, trading energy against budget-overrun iterations.
//!
//! Every run derives from the experiment seed, so the emitted CSVs are
//! byte-identical per seed.

use super::{signed_pct, ExperimentOutput};
use greengpu::baselines::{run_with_policy, PolicyOutcome};
use greengpu::{
    pair_model_for, DeadlineParams, Exp3Params, FreqPolicy, GreenGpuConfig, PairModel, PolicySpec, SwitchingParams,
    UcbParams, WmaParams,
};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_runtime::RunConfig;
use greengpu_sim::{table::fnum, SplitMix64, Table};
use greengpu_workloads::registry::{by_name, by_name_small};
use std::collections::BTreeMap;

/// The workloads of the sweep (paper presets — the runs must be long
/// enough, ≳150 DVFS intervals, for the bandits to leave their
/// forced-exploration phase over the 36-pair grid, where every learner
/// reclocks identically).
const WORKLOADS: [&str; 3] = ["kmeans", "hotspot", "QG"];

/// The policies of the sweep, in presentation order. The `-nosw` rows are
/// the bandits' no-penalty ablations (same learner, switching cost and
/// hysteresis zeroed).
const POLICIES: [&str; 6] = ["wma", "exp3", "exp3-nosw", "ucb", "ucb-nosw", "deadline"];

/// Builds one policy instance for a 6×6 grid. The deadline budget is
/// 1.25× the model's peak-pair iteration time — tight enough to exclude
/// the slowest pairs, loose enough to leave an energy-saving choice.
fn build_policy(kind: &str, seed: u64, model: &PairModel) -> Box<dyn FreqPolicy> {
    let spec = match kind {
        "wma" => PolicySpec::Wma(WmaParams::default()),
        "exp3" => PolicySpec::Exp3(Exp3Params::default()),
        "exp3-nosw" => PolicySpec::Exp3(Exp3Params {
            switching: SwitchingParams::none(),
            ..Exp3Params::default()
        }),
        "ucb" => PolicySpec::Ucb(UcbParams::default()),
        "ucb-nosw" => PolicySpec::Ucb(UcbParams {
            switching: SwitchingParams::none(),
            ..UcbParams::default()
        }),
        "deadline" => PolicySpec::Deadline(DeadlineParams {
            time_budget_s: model.peak_time_s() * 1.25,
            ..DeadlineParams::default()
        }),
        other => unreachable!("unknown policy {other}"),
    };
    spec.build(6, 6, seed, Some(model)).expect("sweep specs are valid")
}

/// Runs every (policy, workload) pair once. Each workload gets one
/// derived instance seed (identical across policies, so every policy sees
/// the same workload) and each policy one derived decision-stream seed.
fn sweep(seed: u64) -> BTreeMap<(String, String), PolicyOutcome> {
    let gpu = geforce_8800_gtx();
    let mut root = SplitMix64::new(seed);
    let mut out = BTreeMap::new();
    for wl_name in WORKLOADS {
        let wl_seed = root.next_u64();
        let model = pair_model_for(by_name(wl_name, wl_seed).expect("registered").as_ref(), &gpu);
        for policy_name in POLICIES {
            let policy_seed = root.next_u64();
            let policy = build_policy(policy_name, policy_seed, &model);
            let mut wl = by_name(wl_name, wl_seed).expect("registered");
            let outcome = run_with_policy(wl.as_mut(), GreenGpuConfig::scaling_only(), RunConfig::sweep(), policy);
            out.insert((wl_name.to_string(), policy_name.to_string()), outcome);
        }
    }
    out
}

/// Table 1: the head-to-head sweep.
fn head_to_head_table(results: &BTreeMap<(String, String), PolicyOutcome>) -> Table {
    let mut t = Table::new(
        "Frequency policies head-to-head (scaling tier only, paper presets)",
        &[
            "workload",
            "policy",
            "GPU energy (kJ)",
            "system energy (kJ)",
            "time (s)",
            "EDP (kJ*s)",
            "switches",
            "regret",
            "vs wma energy",
        ],
    );
    for wl in WORKLOADS {
        let wma_energy = results[&(wl.to_string(), "wma".to_string())].report.total_energy_j();
        for policy in POLICIES {
            let o = &results[&(wl.to_string(), policy.to_string())];
            t.row(&[
                wl.to_string(),
                o.policy.clone(),
                fnum(o.report.gpu_energy_j / 1e3, 2),
                fnum(o.report.total_energy_j() / 1e3, 2),
                fnum(o.report.total_time.as_secs_f64(), 1),
                fnum(o.report.edp() / 1e3, 1),
                o.telemetry.switches.to_string(),
                fnum(o.telemetry.regret, 3),
                signed_pct(o.report.total_energy_j() / wma_energy - 1.0),
            ]);
        }
    }
    t
}

/// Table 2: switching-aware bandits vs their no-penalty ablations.
fn switching_ablation_table(results: &BTreeMap<(String, String), PolicyOutcome>) -> Table {
    let mut t = Table::new(
        "Switching-cost penalty ablation (same learner, penalty + hysteresis on/off)",
        &[
            "workload",
            "bandit",
            "switches (switching-aware)",
            "switches (no penalty)",
            "switch reduction",
            "energy delta (aware vs ablation)",
        ],
    );
    for wl in WORKLOADS {
        for bandit in ["exp3", "ucb"] {
            let aware = &results[&(wl.to_string(), bandit.to_string())];
            let ablation = &results[&(wl.to_string(), format!("{bandit}-nosw"))];
            let reduction = 1.0 - aware.telemetry.switches as f64 / ablation.telemetry.switches.max(1) as f64;
            t.row(&[
                wl.to_string(),
                bandit.to_string(),
                aware.telemetry.switches.to_string(),
                ablation.telemetry.switches.to_string(),
                super::pct(reduction),
                signed_pct(aware.report.total_energy_j() / ablation.report.total_energy_j() - 1.0),
            ]);
        }
    }
    t
}

/// Table 3: the deadline-aware selector across slack factors on kmeans.
/// The budget base is the model's peak-pair iteration time, so slack < 1
/// is infeasible by construction (the selector degrades to the fastest
/// feasible pair) and growing slack opens energy-saving headroom.
fn deadline_slack_table(seed: u64) -> Table {
    let gpu = geforce_8800_gtx();
    let mut root = SplitMix64::new(seed ^ 0xDEAD);
    let wl_seed = root.next_u64();
    let model = pair_model_for(by_name_small("kmeans", wl_seed).expect("registered").as_ref(), &gpu);
    let mut t = Table::new(
        "Deadline-aware selection vs iteration time budget (kmeans, budget = slack x peak-pair time)",
        &[
            "slack",
            "budget (s)",
            "GPU energy (kJ)",
            "time (s)",
            "mean iter (s)",
            "iters over budget",
        ],
    );
    for slack in [0.9, 1.0, 1.1, 1.25, 1.5] {
        let params = DeadlineParams {
            time_budget_s: model.peak_time_s(),
            slack,
            ..DeadlineParams::default()
        };
        let budget_s = params.time_budget_s * params.slack;
        let policy = PolicySpec::Deadline(params)
            .build(6, 6, 0, Some(&model))
            .expect("valid deadline spec");
        let mut wl = by_name_small("kmeans", wl_seed).expect("registered");
        let outcome = run_with_policy(wl.as_mut(), GreenGpuConfig::scaling_only(), RunConfig::sweep(), policy);
        let iters = &outcome.report.iterations;
        let mean_iter_s = iters.iter().map(|it| it.tg_s).sum::<f64>() / iters.len().max(1) as f64;
        let over = iters.iter().filter(|it| it.tg_s > budget_s * (1.0 + 1e-9)).count();
        t.row(&[
            fnum(slack, 2),
            fnum(budget_s, 2),
            fnum(outcome.report.gpu_energy_j / 1e3, 2),
            fnum(outcome.report.total_time.as_secs_f64(), 1),
            fnum(mean_iter_s, 2),
            over.to_string(),
        ]);
    }
    t
}

/// Runs the full policies experiment.
pub fn run(seed: u64) -> ExperimentOutput {
    let results = sweep(seed);
    ExperimentOutput {
        id: "policies",
        title: "Pluggable Tier-2 frequency policies: WMA vs switching-aware bandits vs deadline-aware selection",
        tables: vec![
            head_to_head_table(&results),
            switching_ablation_table(&results),
            deadline_slack_table(seed),
        ],
        notes: vec![
            "All policies drive the same hardened controller through the FreqPolicy seam; only the Tier-2 decision rule differs.".to_string(),
            "The switching-cost penalty plus hysteresis buys the bandits strictly fewer reclocks than their no-penalty ablations on every workload.".to_string(),
            "Regret is charged loss (Table-I base + switching penalties) minus the best static pair in hindsight; WMA's windowed tracker stays close to the static best on these stationary workloads.".to_string(),
            "The deadline selector exposes the energy/latency dial: an infeasible budget (slack < 1) degrades to the fastest pair, and growing slack converts headroom into GPU energy savings.".to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn head_to_head_covers_every_policy_and_workload() {
        let results = sweep(1);
        assert_eq!(results.len(), WORKLOADS.len() * POLICIES.len());
        let t = head_to_head_table(&results);
        let csv = t.to_csv();
        assert_eq!(csv.lines().count(), 1 + WORKLOADS.len() * POLICIES.len());
        for policy in POLICIES {
            assert!(csv.contains(policy), "{policy} missing from table");
        }
    }

    #[test]
    fn switching_aware_bandits_switch_strictly_less() {
        let results = sweep(2);
        for wl in WORKLOADS {
            for bandit in ["exp3", "ucb"] {
                let aware = results[&(wl.to_string(), bandit.to_string())].telemetry.switches;
                let ablation = results[&(wl.to_string(), format!("{bandit}-nosw"))].telemetry.switches;
                assert!(
                    aware < ablation,
                    "{wl}/{bandit}: {aware} switches with penalty vs {ablation} without"
                );
            }
        }
    }

    #[test]
    fn deadline_slack_trades_energy_for_budget() {
        let t = deadline_slack_table(3);
        let rows: Vec<Vec<String>> = t
            .to_csv()
            .lines()
            .skip(1)
            .map(|l| l.split(',').map(str::to_string).collect())
            .collect();
        assert_eq!(rows.len(), 5);
        // The loosest budget must not burn more GPU energy than the
        // infeasible one (which pins the fastest pair).
        let energy = |r: &[String]| -> f64 { r[2].parse().unwrap() };
        assert!(energy(&rows[4]) <= energy(&rows[0]) + 1e-9);
        // An infeasible budget overruns on every iteration.
        let over: usize = rows[0][5].parse().unwrap();
        assert!(over > 0, "slack 0.9 must overrun its budget");
    }

    #[test]
    fn experiment_is_byte_deterministic_per_seed() {
        let a: Vec<String> = run(7).tables.iter().map(|t| t.to_csv()).collect();
        let b: Vec<String> = run(7).tables.iter().map(|t| t.to_csv()).collect();
        assert_eq!(a, b, "same seed must reproduce the CSVs byte-for-byte");
    }
}
