//! Fig. 2 — energy vs. workload-division ratio for kmeans.
//!
//! The paper's §III-B motivation: system energy as the CPU share sweeps
//! from 0 % to 90 % at peak clocks. The paper observes the minimum near
//! 10 % CPU — cooperation beats the GPU taking all the work.

use super::{pct, ExperimentOutput};
use greengpu::baselines::{static_search, StaticPoint};
use greengpu_sim::{table::fnum, Table};
use greengpu_workloads::kmeans::KMeans;

/// Runs the Fig. 2 sweep (10 % grid like the paper's plot).
pub fn run(seed: u64) -> ExperimentOutput {
    let (points, best) = static_search(|| Box::new(KMeans::paper(seed)), 0.10, 0.90);
    let table = sweep_table(&points);
    let best_share = points[best].cpu_share;
    let saving_at_best = 1.0 - points[best].energy_j / points[0].energy_j;
    ExperimentOutput {
        id: "fig2",
        title: "Energy consumption for different workload division ratios (kmeans)",
        tables: vec![table],
        notes: vec![
            format!(
                "Energy minimum at {}% CPU share, saving {} vs the all-GPU division (paper: minimum at 10%).",
                fnum(best_share * 100.0, 0),
                pct(saving_at_best)
            ),
            "Energy falls from 0% toward the minimum, then rises toward 90% — the paper's U-shape.".to_string(),
        ],
    }
}

fn sweep_table(points: &[StaticPoint]) -> Table {
    let mut t = Table::new(
        "Fig. 2 — system energy vs CPU work percentage (kmeans, peak clocks)",
        &["CPU share", "energy (J)", "normalized energy", "time (s)"],
    );
    let e0 = points[0].energy_j;
    for p in points {
        t.row(&[
            format!("{}%", fnum(p.cpu_share * 100.0, 0)),
            fnum(p.energy_j, 0),
            fnum(p.energy_j / e0, 3),
            fnum(p.time_s, 1),
        ]);
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn energy_curve_is_u_shaped_with_interior_minimum() {
        let (points, best) = static_search(|| Box::new(KMeans::paper(2)), 0.10, 0.90);
        assert!(best > 0 && best < points.len() - 1, "minimum at index {best}");
        // The paper's minimum is at 10 %; ours should land at 10-20 %.
        let share = points[best].cpu_share;
        assert!((0.05..=0.25).contains(&share), "minimum at {share}");
        // Ends are strictly worse.
        assert!(points[best].energy_j < points[0].energy_j * 0.98);
        assert!(points[best].energy_j < points.last().unwrap().energy_j * 0.6);
    }

    #[test]
    fn output_has_ten_rows() {
        let out = run(1);
        assert_eq!(out.tables[0].len(), 10);
    }
}
