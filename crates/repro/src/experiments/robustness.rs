//! Robustness — energy saving vs sensor/actuator fault intensity.
//!
//! Not a paper figure: this sweep exercises the hardened two-tier
//! controller behind the seeded fault injectors of `greengpu_hw::faults`.
//! At intensity 0 the injectors are transparent and the rows reproduce
//! the clean holistic-vs-default comparison exactly; as intensity grows,
//! utilization jitter, stale/dropped SMI windows and misbehaving
//! actuation erode (but should not invert) the saving, and sufficiently
//! broken actuation trips the best-performance fallback instead of
//! stranding the platform at low clocks.

use super::{pct, ExperimentOutput};
use greengpu::baselines::{run_best_performance_with, run_greengpu_faulted, FaultedOutcome};
use greengpu::GreenGpuConfig;
use greengpu_hw::FaultPlan;
use greengpu_runtime::{RunConfig, RunReport};
use greengpu_sim::{table::fnum, Table};
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::Workload;

/// The fault intensities swept, from transparent to severe.
pub const INTENSITIES: [f64; 5] = [0.0, 0.25, 0.50, 0.75, 1.0];

/// One row of the sweep: a faulted holistic run against the clean
/// best-performance baseline of the same workload.
pub struct Point {
    /// Workload name.
    pub name: &'static str,
    /// Fault intensity in [0, 1].
    pub intensity: f64,
    /// The faulted GreenGPU run.
    pub outcome: FaultedOutcome,
    /// Clean best-performance baseline (all-GPU, peak clocks).
    pub baseline_j: f64,
}

impl Point {
    /// Ground-truth energy saving vs the clean baseline.
    pub fn saving(&self) -> f64 {
        1.0 - self.outcome.report.total_energy_j() / self.baseline_j
    }

    /// What a biased/saturated meter would report for this run: the
    /// plan's meter distortion applied to the run's mean power draw.
    pub fn observed_energy_j(&self, plan: &FaultPlan) -> f64 {
        let time_s = self.outcome.report.total_time.as_secs_f64();
        if time_s <= 0.0 {
            return 0.0;
        }
        let mean_w = self.outcome.report.total_energy_j() / time_s;
        plan.meter.observed_w(mean_w) * time_s
    }
}

fn sweep<F>(name: &'static str, seed: u64, mut make: F) -> (Vec<(FaultPlan, Point)>, RunReport)
where
    F: FnMut() -> Box<dyn Workload>,
{
    let baseline = run_best_performance_with(make().as_mut(), RunConfig::sweep());
    let baseline_j = baseline.total_energy_j();
    let points = INTENSITIES
        .iter()
        .map(|&intensity| {
            let plan = FaultPlan::with_intensity(seed, intensity);
            let outcome = run_greengpu_faulted(make().as_mut(), GreenGpuConfig::holistic(), RunConfig::sweep(), &plan);
            (
                plan,
                Point {
                    name,
                    intensity,
                    outcome,
                    baseline_j,
                },
            )
        })
        .collect();
    (points, baseline)
}

/// Runs the robustness sweep on the paper's two headline workloads.
pub fn run(seed: u64) -> ExperimentOutput {
    let (hs, _) = sweep("hotspot", seed, || Box::new(Hotspot::paper(seed)));
    let (km, _) = sweep("kmeans", seed, || Box::new(KMeans::paper(seed)));

    let mut t = Table::new(
        "Robustness — GreenGPU energy saving vs fault intensity (clean best-performance baseline)",
        &[
            "workload",
            "intensity",
            "green energy (kJ)",
            "baseline (kJ)",
            "saving",
            "observed energy (kJ)",
            "injections",
            "sensor rejects",
            "actuation failures",
            "fallback",
        ],
    );
    for (plan, p) in hs.iter().chain(km.iter()) {
        t.row(&[
            p.name.to_string(),
            fnum(p.intensity, 2),
            fnum(p.outcome.report.total_energy_j() / 1e3, 2),
            fnum(p.baseline_j / 1e3, 2),
            pct(p.saving()),
            fnum(p.observed_energy_j(plan) / 1e3, 2),
            p.outcome.injections.to_string(),
            p.outcome.sensor_rejects.to_string(),
            p.outcome.actuation_failures.to_string(),
            if p.outcome.fallback_engaged { "yes" } else { "no" }.to_string(),
        ]);
    }

    let clean_saving = (hs[0].1.saving() + km[0].1.saving()) / 2.0;
    let worst_saving = hs
        .iter()
        .chain(km.iter())
        .map(|(_, p)| p.saving())
        .fold(f64::INFINITY, f64::min);
    let total_injections: usize = hs.iter().chain(km.iter()).map(|(_, p)| p.outcome.injections).sum();

    ExperimentOutput {
        id: "robustness",
        title: "Hardened controller under seeded sensor/actuator faults",
        tables: vec![t],
        notes: vec![
            format!(
                "Intensity 0 is injector-transparent: average saving vs default is {} — identical to the clean holistic runs.",
                pct(clean_saving)
            ),
            format!(
                "Worst saving across the sweep is {}; hardening keeps the faulted controller from doing worse than roughly break-even against the default.",
                pct(worst_saving)
            ),
            format!("{total_injections} faults were injected across the sweep (all seeded and replayable)."),
            "Meter faults distort only the observed-energy column; the accounting columns are ground truth.".to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_intensity_matches_the_clean_holistic_run() {
        let (points, _) = sweep("kmeans", 7, || Box::new(KMeans::small(2)));
        let clean =
            greengpu::baselines::run_with_config(&mut KMeans::small(2), GreenGpuConfig::holistic(), RunConfig::sweep());
        let p = &points[0].1;
        assert_eq!(p.intensity, 0.0);
        assert_eq!(p.outcome.report.total_energy_j(), clean.total_energy_j());
        assert_eq!(p.outcome.injections, 0);
        assert_eq!(p.outcome.sensor_rejects, 0);
        assert!(!p.outcome.fallback_engaged);
    }

    #[test]
    fn saving_stays_positive_under_moderate_faults() {
        let (points, _) = sweep("hotspot", 21, || Box::new(Hotspot::small(3)));
        for (_, p) in &points[..3] {
            assert!(p.saving() > 0.0, "intensity {} saving {}", p.intensity, p.saving());
        }
    }

    #[test]
    fn severe_intensities_actually_inject() {
        let (points, _) = sweep("kmeans", 3, || Box::new(KMeans::small(2)));
        let severe = &points.last().unwrap().1;
        assert!(severe.outcome.injections > 0, "intensity 1.0 must inject");
    }
}
