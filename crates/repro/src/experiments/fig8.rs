//! Fig. 8 — GreenGPU as a holistic solution.
//!
//! Per-iteration energy of the full two-tier GreenGPU against the
//! *Division*-only and *Frequency-scaling*-only baselines on hotspot and
//! kmeans, plus the headline comparison against the Rodinia default
//! (all-GPU, peak clocks). Paper numbers: hotspot +7.88 % over Division
//! and +28.76 % over Frequency-scaling; kmeans +1.6 % and +12.05 %;
//! 21.04 % average saving vs the default; holistic runs 1.7 % longer than
//! division-only.

use super::{pct, signed_pct, ExperimentOutput};
use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_runtime::{RunConfig, RunReport};
use greengpu_sim::{table::fnum, Table};
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::Workload;

/// The four runs of one Fig. 8 panel.
pub struct Panel {
    /// Workload name.
    pub name: &'static str,
    /// Full two-tier GreenGPU.
    pub green: RunReport,
    /// Division tier only.
    pub division: RunReport,
    /// Frequency-scaling tier only.
    pub scaling: RunReport,
    /// Rodinia default: all-GPU at peak clocks.
    pub default: RunReport,
}

impl Panel {
    /// Energy saving of GreenGPU relative to a baseline's total energy.
    fn saving_vs(&self, baseline: &RunReport) -> f64 {
        1.0 - self.green.total_energy_j() / baseline.total_energy_j()
    }
}

/// Runs all four policies on one workload.
pub fn panel<F>(name: &'static str, mut make: F) -> Panel
where
    F: FnMut() -> Box<dyn Workload>,
{
    Panel {
        name,
        green: run_with_config(make().as_mut(), GreenGpuConfig::holistic(), RunConfig::sweep()),
        division: run_with_config(make().as_mut(), GreenGpuConfig::division_only(), RunConfig::sweep()),
        scaling: run_with_config(make().as_mut(), GreenGpuConfig::scaling_only(), RunConfig::sweep()),
        default: run_best_performance_with(make().as_mut(), RunConfig::sweep()),
    }
}

fn iteration_table(p: &Panel) -> Table {
    let mut t = Table::new(
        format!("Fig. 8 — {}: per-iteration energy (kJ) and division ratio", p.name),
        &[
            "iteration",
            "CPU share (GreenGPU)",
            "GreenGPU",
            "Division",
            "Freq-scaling",
        ],
    );
    let n = p
        .green
        .iterations
        .len()
        .min(p.division.iterations.len())
        .min(p.scaling.iterations.len());
    for i in 0..n {
        t.row(&[
            (i + 1).to_string(),
            format!("{}%", fnum(p.green.iterations[i].cpu_share * 100.0, 0)),
            fnum(p.green.iterations[i].energy_j / 1e3, 2),
            fnum(p.division.iterations[i].energy_j / 1e3, 2),
            fnum(p.scaling.iterations[i].energy_j / 1e3, 2),
        ]);
    }
    t
}

/// Runs Fig. 8 for hotspot and kmeans.
pub fn run(seed: u64) -> ExperimentOutput {
    let hs = panel("hotspot", || Box::new(Hotspot::paper(seed)));
    let km = panel("kmeans", || Box::new(KMeans::paper(seed)));

    let mut summary = Table::new(
        "Fig. 8 summary — GreenGPU energy saving vs each baseline",
        &[
            "workload",
            "vs Division",
            "vs Freq-scaling",
            "vs default (all-GPU, peak)",
            "time vs Division",
        ],
    );
    for p in [&hs, &km] {
        summary.row(&[
            p.name.to_string(),
            pct(p.saving_vs(&p.division)),
            pct(p.saving_vs(&p.scaling)),
            pct(p.saving_vs(&p.default)),
            signed_pct(p.green.total_time.as_secs_f64() / p.division.total_time.as_secs_f64() - 1.0),
        ]);
    }
    let headline = (hs.saving_vs(&hs.default) + km.saving_vs(&km.default)) / 2.0;

    ExperimentOutput {
        id: "fig8",
        title: "GreenGPU as a holistic solution vs single-tier baselines",
        tables: vec![summary, iteration_table(&hs), iteration_table(&km)],
        notes: vec![
            format!(
                "hotspot: GreenGPU saves {} over Division and {} over Frequency-scaling (paper: 7.88% and 28.76%).",
                pct(hs.saving_vs(&hs.division)),
                pct(hs.saving_vs(&hs.scaling))
            ),
            format!(
                "kmeans: GreenGPU saves {} over Division and {} over Frequency-scaling (paper: 1.6% and 12.05%).",
                pct(km.saving_vs(&km.division)),
                pct(km.saving_vs(&km.scaling))
            ),
            format!(
                "Headline: average saving vs the Rodinia default across hotspot+kmeans is {} (paper: 21.04%).",
                pct(headline)
            ),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn greengpu_beats_every_baseline_on_both_workloads() {
        for p in [
            panel("hotspot", || Box::new(Hotspot::paper(11))),
            panel("kmeans", || Box::new(KMeans::paper(11))),
        ] {
            let g = p.green.total_energy_j();
            assert!(g < p.division.total_energy_j(), "{}: vs division", p.name);
            assert!(g < p.scaling.total_energy_j(), "{}: vs scaling", p.name);
            assert!(g < p.default.total_energy_j(), "{}: vs default", p.name);
        }
    }

    #[test]
    fn division_contributes_more_than_scaling() {
        // Paper §VII-C: "Division contributes more to energy saving than
        // Frequency-scaling in holistic solution because nvidia-settings on
        // GeForce8800 only conducts frequency scaling".
        for p in [
            panel("hotspot", || Box::new(Hotspot::paper(12))),
            panel("kmeans", || Box::new(KMeans::paper(12))),
        ] {
            assert!(
                p.division.total_energy_j() < p.scaling.total_energy_j(),
                "{}: division {} vs scaling {}",
                p.name,
                p.division.total_energy_j(),
                p.scaling.total_energy_j()
            );
        }
    }

    #[test]
    fn headline_saving_is_in_the_paper_band() {
        let hs = panel("hotspot", || Box::new(Hotspot::paper(13)));
        let km = panel("kmeans", || Box::new(KMeans::paper(13)));
        let headline = (hs.saving_vs(&hs.default) + km.saving_vs(&km.default)) / 2.0;
        // Paper: 21.04%. Accept 12-32% for the simulated card.
        assert!((0.12..0.32).contains(&headline), "headline saving {headline}");
    }

    #[test]
    fn holistic_time_overhead_vs_division_is_small() {
        // Paper: 1.7% longer than workload-division-only.
        let hs = panel("hotspot", || Box::new(Hotspot::paper(14)));
        let overhead = hs.green.total_time.as_secs_f64() / hs.division.total_time.as_secs_f64() - 1.0;
        assert!(overhead.abs() < 0.08, "time overhead {overhead}");
    }
}
