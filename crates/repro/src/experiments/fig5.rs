//! Fig. 5 — runtime trace of the frequency-scaling tier on streamcluster.
//!
//! The paper's trace: core and memory utilizations with the frequencies
//! the WMA scaler enforces (3 s interval, starting from the driver-default
//! lowest clocks), and the power draw against the *best-performance*
//! baseline. The memory clock converges to 820 MHz; the core clock tracks
//! the utilization ramps.

use super::ExperimentOutput;
use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_runtime::{RunConfig, RunReport};
use greengpu_sim::{table::fnum, SimDuration, SimTime, Table};
use greengpu_workloads::streamcluster::StreamCluster;

/// Sampling period of the rendered trace (the meters' 1 Hz, decimated for
/// the markdown table; the CSV keeps every sample).
const TRACE_PERIOD_S: u64 = 3;

/// Runs the Fig. 5 trace.
pub fn run(seed: u64) -> ExperimentOutput {
    let ours = run_with_config(
        &mut StreamCluster::paper(seed),
        GreenGpuConfig::scaling_only(),
        RunConfig::sweep(),
    );
    let base = run_best_performance_with(&mut StreamCluster::paper(seed), RunConfig::sweep());

    let table = trace_table(&ours, &base);
    let final_mem = ours.platform.gpu().mem().current_mhz();
    let mem_mhz_trace = ours.platform.gpu().mem().trace();
    let settled_mem = mem_mhz_trace.value_at(ours.total_time.into_time());
    let time_overhead = ours.total_time.as_secs_f64() / base.total_time.as_secs_f64() - 1.0;
    let energy_saving = 1.0 - ours.gpu_energy_j / base.gpu_energy_j;

    ExperimentOutput {
        id: "fig5",
        title: "Frequency scaling trace on streamcluster (ours vs best-performance)",
        tables: vec![table],
        notes: vec![
            format!(
                "Memory clock settles at {settled_mem} MHz (paper: converges to 820 MHz, below the 900 MHz peak). Final level: {final_mem} MHz."
            ),
            format!(
                "GPU energy saving vs best-performance: {:.2}% with {:.2}% execution-time delta (paper: lower average power at similar execution time).",
                energy_saving * 100.0,
                time_overhead * 100.0
            ),
        ],
    }
}

/// Extension trait: SimDuration → SimTime at the same offset from zero.
trait IntoTime {
    fn into_time(self) -> SimTime;
}
impl IntoTime for SimDuration {
    fn into_time(self) -> SimTime {
        SimTime::ZERO + self
    }
}

fn trace_table(ours: &RunReport, base: &RunReport) -> Table {
    let mut t = Table::new(
        "Fig. 5 — utilizations, enforced frequencies, and power over time",
        &[
            "t (s)",
            "u_core",
            "core MHz",
            "u_mem",
            "mem MHz",
            "P ours (W)",
            "P best-perf (W)",
        ],
    );
    let gpu = ours.platform.gpu();
    let end_s = ours.total_time.as_secs_f64().min(120.0) as u64;
    let mut s = 0;
    while s <= end_s {
        let at = SimTime::from_secs(s);
        let window = SimTime::from_secs(s.saturating_sub(TRACE_PERIOD_S));
        t.row(&[
            s.to_string(),
            fnum(gpu.u_core_trace().mean(window, at.max(SimTime::from_secs(1))), 2),
            fnum(gpu.core().trace().value_at(at), 0),
            fnum(gpu.u_mem_trace().mean(window, at.max(SimTime::from_secs(1))), 2),
            fnum(gpu.mem().trace().value_at(at), 0),
            fnum(ours.platform.gpu_meter().power_at(at), 1),
            fnum(base.platform.gpu_meter().power_at(at), 1),
        ]);
        s += TRACE_PERIOD_S;
    }
    t
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn memory_clock_converges_to_820() {
        let ours = run_with_config(
            &mut StreamCluster::paper(3),
            GreenGpuConfig::scaling_only(),
            RunConfig::sweep(),
        );
        // The paper's headline trace claim: the scaler settles SC's memory
        // at 820 MHz (one level below peak).
        let end = SimTime::ZERO + ours.total_time;
        let half = SimTime::from_micros(end.as_micros() / 2);
        let settled = ours.platform.gpu().mem().trace().mean(half, end);
        assert!(
            (settled - 820.0).abs() < 25.0,
            "memory settled at {settled} MHz, expected ~820"
        );
    }

    #[test]
    fn core_clock_settles_near_410() {
        // §III-A / Fig. 1d: SC's core sweet spot is ~410 MHz; the scaler
        // should find the 408 MHz level.
        let ours = run_with_config(
            &mut StreamCluster::paper(3),
            GreenGpuConfig::scaling_only(),
            RunConfig::sweep(),
        );
        let end = SimTime::ZERO + ours.total_time;
        let half = SimTime::from_micros(end.as_micros() / 2);
        let settled = ours.platform.gpu().core().trace().mean(half, end);
        assert!(
            (settled - 408.0).abs() < 60.0,
            "core settled at {settled} MHz, expected ~408"
        );
    }

    #[test]
    fn frequencies_start_at_driver_default_lowest() {
        let ours = run_with_config(
            &mut StreamCluster::paper(3),
            GreenGpuConfig::scaling_only(),
            RunConfig::sweep(),
        );
        assert_eq!(ours.platform.gpu().core().trace().value_at(SimTime::ZERO), 296.0);
        assert_eq!(ours.platform.gpu().mem().trace().value_at(SimTime::ZERO), 500.0);
    }

    #[test]
    fn average_power_is_below_best_performance() {
        let ours = run_with_config(
            &mut StreamCluster::paper(4),
            GreenGpuConfig::scaling_only(),
            RunConfig::sweep(),
        );
        let base = run_best_performance_with(&mut StreamCluster::paper(4), RunConfig::sweep());
        let p_ours = ours.gpu_energy_j / ours.total_time.as_secs_f64();
        let p_base = base.gpu_energy_j / base.total_time.as_secs_f64();
        assert!(p_ours < p_base, "ours {p_ours} W vs base {p_base} W");
    }

    #[test]
    fn trace_table_renders_rows() {
        let out = run(5);
        assert!(out.tables[0].len() >= 10, "trace too short");
    }
}
