//! Fig. 7 — workload-division traces for kmeans and hotspot.
//!
//! The division tier alone (frequency scaling disabled, clocks at peak),
//! starting from the paper's 30 % initial CPU share: per-iteration CPU
//! share, `tc` and `tg`. The paper's traces converge in ~4 iterations —
//! kmeans to 20/80 CPU/GPU, hotspot to 50/50.

use super::ExperimentOutput;
use greengpu::baselines::run_with_config;
use greengpu::GreenGpuConfig;
use greengpu_runtime::{RunConfig, RunReport};
use greengpu_sim::{table::fnum, Table};
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::Workload;

/// Runs the division-only trace for one workload.
pub fn trace(workload: &mut dyn Workload) -> RunReport {
    run_with_config(workload, GreenGpuConfig::division_only(), RunConfig::sweep())
}

fn trace_table(title: &str, report: &RunReport) -> Table {
    let mut t = Table::new(title, &["iteration", "CPU share", "tc (s)", "tg (s)"]);
    for it in &report.iterations {
        t.row(&[
            (it.index + 1).to_string(),
            format!("{}%", fnum(it.cpu_share * 100.0, 0)),
            fnum(it.tc_s, 1),
            fnum(it.tg_s, 1),
        ]);
    }
    t
}

/// Runs Fig. 7 for both workloads.
pub fn run(seed: u64) -> ExperimentOutput {
    let km = trace(&mut KMeans::paper(seed));
    let hs = trace(&mut Hotspot::paper(seed));
    let t_km = trace_table("Fig. 7a — kmeans division trace (initial 30% CPU)", &km);
    let t_hs = trace_table("Fig. 7b — hotspot division trace (initial 30% CPU)", &hs);

    let km_final = km.iterations.last().unwrap().cpu_share;
    let hs_final = hs.iterations.last().unwrap().cpu_share;
    ExperimentOutput {
        id: "fig7",
        title: "Workload division adjusts the CPU/GPU allocation to balance completion times",
        tables: vec![t_km, t_hs],
        notes: vec![
            format!(
                "kmeans converges to {}/{} CPU/GPU (paper: 20/80, energy-optimal static 15/85).",
                fnum(km_final * 100.0, 0),
                fnum((1.0 - km_final) * 100.0, 0)
            ),
            format!(
                "hotspot converges to {}/{} CPU/GPU (paper: exactly 50/50).",
                fnum(hs_final * 100.0, 0),
                fnum((1.0 - hs_final) * 100.0, 0)
            ),
            "tc and tg approach each other over the first ~4 iterations, minimizing idle-wait energy.".to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kmeans_converges_to_twenty_eighty() {
        let report = trace(&mut KMeans::paper(7));
        let last = report.iterations.last().unwrap();
        assert!(
            (last.cpu_share - 0.20).abs() < 1e-9,
            "kmeans settled at {}",
            last.cpu_share
        );
    }

    #[test]
    fn hotspot_converges_to_fifty_fifty() {
        let report = trace(&mut Hotspot::paper(7));
        let last = report.iterations.last().unwrap();
        assert!(
            (last.cpu_share - 0.50).abs() < 1e-9,
            "hotspot settled at {}",
            last.cpu_share
        );
    }

    #[test]
    fn execution_times_balance_after_convergence() {
        let report = trace(&mut Hotspot::paper(7));
        let last = report.iterations.last().unwrap();
        let imbalance = (last.tc_s - last.tg_s).abs() / last.tc_s.max(last.tg_s);
        assert!(imbalance < 0.15, "post-convergence imbalance {imbalance}");
    }

    #[test]
    fn convergence_happens_within_five_iterations() {
        // Paper: "the execution times on both sides are roughly the same
        // after 4 iterations" from the 30% start.
        let report = trace(&mut Hotspot::paper(7));
        let settled = report.iterations.last().unwrap().cpu_share;
        let reached = report
            .iterations
            .iter()
            .position(|it| (it.cpu_share - settled).abs() < 1e-9)
            .unwrap();
        assert!(reached <= 5, "took {reached} iterations to reach the final ratio");
    }

    #[test]
    fn share_moves_toward_slower_side_each_step() {
        let report = trace(&mut KMeans::paper(8));
        for w in report.iterations.windows(2) {
            let (prev, next) = (&w[0], &w[1]);
            let dr = next.cpu_share - prev.cpu_share;
            if dr > 0.0 {
                assert!(prev.tc_s <= prev.tg_s, "share rose though CPU was slower");
            } else if dr < 0.0 {
                assert!(prev.tc_s >= prev.tg_s, "share fell though GPU was slower");
            }
        }
    }
}
