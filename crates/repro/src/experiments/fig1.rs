//! Fig. 1 — frequency scaling case study on GPU cores and memory.
//!
//! The paper's §III-A motivation: sweep the memory frequency with cores at
//! peak (1a/1b) and the core frequency with memory at peak (1c/1d) for the
//! core-bounded `nbody` and memory-bounded `streamcluster`, reporting
//! execution time normalized to the peak-frequency run and energy relative
//! to the peak-frequency run (GPU card meter).

use super::{ExperimentOutput, DEFAULT_SEED};
use greengpu::baselines::run_pinned;
use greengpu_hw::calib::{GPU_CORE_LEVELS_MHZ, GPU_MEM_LEVELS_MHZ};
use greengpu_runtime::{RunConfig, RunReport};
use greengpu_sim::{table::fnum, Table};
use greengpu_workloads::nbody::NBody;
use greengpu_workloads::streamcluster::StreamCluster;
use greengpu_workloads::Workload;

struct SweepPoint {
    mhz: f64,
    norm_time: f64,
    rel_energy: f64,
}

fn sweep<F>(mut make: F, vary_mem: bool) -> Vec<SweepPoint>
where
    F: FnMut() -> Box<dyn Workload>,
{
    let peak = {
        let mut wl = make();
        run_pinned(wl.as_mut(), 5, 5, RunConfig::sweep())
    };
    let norm = |r: &RunReport, peak: &RunReport| SweepPoint {
        mhz: 0.0,
        norm_time: r.total_time.as_secs_f64() / peak.total_time.as_secs_f64(),
        rel_energy: r.gpu_energy_j / peak.gpu_energy_j,
    };
    (0..6)
        .map(|lvl| {
            let mut wl = make();
            let (c, m) = if vary_mem { (5, lvl) } else { (lvl, 5) };
            let report = run_pinned(wl.as_mut(), c, m, RunConfig::sweep());
            let mut p = norm(&report, &peak);
            p.mhz = if vary_mem {
                GPU_MEM_LEVELS_MHZ[lvl]
            } else {
                GPU_CORE_LEVELS_MHZ[lvl]
            };
            p
        })
        .collect()
}

fn sweep_table(title: &str, axis: &str, nbody: &[SweepPoint], sc: &[SweepPoint]) -> Table {
    let mut t = Table::new(
        title,
        &[
            axis,
            "nbody norm. time",
            "nbody rel. energy",
            "SC norm. time",
            "SC rel. energy",
        ],
    );
    for (n, s) in nbody.iter().zip(sc).rev() {
        t.row(&[
            fnum(n.mhz, 0),
            fnum(n.norm_time, 3),
            fnum(n.rel_energy, 3),
            fnum(s.norm_time, 3),
            fnum(s.rel_energy, 3),
        ]);
    }
    t
}

/// Runs the Fig. 1 sweeps.
pub fn run(seed: u64) -> ExperimentOutput {
    let mem_nbody = sweep(|| Box::new(NBody::paper(seed)), true);
    let mem_sc = sweep(|| Box::new(StreamCluster::paper(seed)), true);
    let core_nbody = sweep(|| Box::new(NBody::paper(seed)), false);
    let core_sc = sweep(|| Box::new(StreamCluster::paper(seed)), false);

    let t_mem = sweep_table(
        "Fig. 1a/1b — memory-frequency sweep (cores at 576 MHz)",
        "mem MHz",
        &mem_nbody,
        &mem_sc,
    );
    let t_core = sweep_table(
        "Fig. 1c/1d — core-frequency sweep (memory at 900 MHz)",
        "core MHz",
        &core_nbody,
        &core_sc,
    );

    let mut notes = Vec::new();
    notes.push(format!(
        "nbody at memory 500 MHz: time ×{}, energy ×{} (paper: nearly flat time, energy drops) — core-bounded.",
        fnum(mem_nbody[0].norm_time, 3),
        fnum(mem_nbody[0].rel_energy, 3)
    ));
    notes.push(format!(
        "SC at memory 500 MHz: time ×{} (paper: memory-bounded, both time and energy suffer).",
        fnum(mem_sc[0].norm_time, 3)
    ));
    let sc_410 = &core_sc[2];
    notes.push(format!(
        "SC at core 408 MHz: time ×{}, energy ×{} (paper: ~410 MHz saves energy with negligible performance loss).",
        fnum(sc_410.norm_time, 3),
        fnum(sc_410.rel_energy, 3)
    ));
    notes.push(format!(
        "nbody at core 296 MHz: time ×{} (paper: core throttling hurts the core-bounded workload).",
        fnum(core_nbody[0].norm_time, 3)
    ));

    ExperimentOutput {
        id: "fig1",
        title: "Normalized execution time and relative energy under per-domain frequency throttling",
        tables: vec![t_mem, t_core],
        notes,
    }
}

/// Convenience entry with the default seed (used by benches).
pub fn run_default() -> ExperimentOutput {
    run(DEFAULT_SEED)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig1_reproduces_the_paper_shapes() {
        let mem_nbody = sweep(|| Box::new(NBody::paper(1)), true);
        // nbody: memory throttling is nearly free and saves energy.
        assert!(mem_nbody[0].norm_time < 1.05, "nbody time {}", mem_nbody[0].norm_time);
        assert!(
            mem_nbody[0].rel_energy < 1.0,
            "nbody energy {}",
            mem_nbody[0].rel_energy
        );

        let mem_sc = sweep(|| Box::new(StreamCluster::paper(1)), true);
        // SC: memory throttling stretches time markedly.
        assert!(mem_sc[0].norm_time > 1.15, "SC time {}", mem_sc[0].norm_time);

        let core_sc = sweep(|| Box::new(StreamCluster::paper(1)), false);
        // SC at ~410 MHz core: negligible time cost, energy saved.
        assert!(core_sc[2].norm_time < 1.05, "SC 408MHz time {}", core_sc[2].norm_time);
        assert!(
            core_sc[2].rel_energy < 1.0,
            "SC 408MHz energy {}",
            core_sc[2].rel_energy
        );
        // Below that it starts hurting.
        assert!(core_sc[0].norm_time > core_sc[2].norm_time);

        let core_nbody = sweep(|| Box::new(NBody::paper(1)), false);
        // nbody: core throttling stretches time hard.
        assert!(
            core_nbody[0].norm_time > 1.5,
            "nbody core time {}",
            core_nbody[0].norm_time
        );
    }

    #[test]
    fn peak_point_is_normalized_to_one() {
        let pts = sweep(|| Box::new(NBody::paper(1)), true);
        assert!((pts[5].norm_time - 1.0).abs() < 1e-9);
        assert!((pts[5].rel_energy - 1.0).abs() < 1e-9);
    }

    #[test]
    fn output_has_two_tables_with_six_rows() {
        let out = run(1);
        assert_eq!(out.tables.len(), 2);
        assert_eq!(out.tables[0].len(), 6);
        assert_eq!(out.tables[1].len(), 6);
    }
}
