//! Ablations over the design choices DESIGN.md calls out, as result
//! tables (the `ablations` Criterion bench measures the same paths for
//! speed; this experiment reports the *outcomes*).

use super::{pct, signed_pct, ExperimentOutput};
use greengpu::autotune::{tune, TuneGrid};
use greengpu::baselines::run_on_platform;
use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::division::{DivisionController, DivisionParams};
use greengpu::oracle::wma_regret;
use greengpu::wma::{WmaParams, WmaScaler};
use greengpu::{DivisionAlgo, GovernorKind, GreenGpuConfig};
use greengpu_runtime::{CommMode, RunConfig};
use greengpu_sim::{table::fnum, Pcg32, Table};
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::registry;
use greengpu_workloads::streamcluster::StreamCluster;

/// Division step-size sweep on the linear testbed (`tc = r·C`,
/// `tg = (1−r)·G`, C/G = 4.5 → balance 0.18).
fn division_step_table() -> Table {
    let mut t = Table::new(
        "Ablation — division step size (linear testbed, balance at 18.2%)",
        &["step", "iterations to settle", "settled share", "safeguard holds"],
    );
    for step in [0.01, 0.02, 0.05, 0.10, 0.20] {
        let mut ctl = DivisionController::new(
            0.50,
            DivisionParams {
                step,
                ..DivisionParams::default()
            },
        );
        let mut settled_at = 0;
        let mut last = ctl.share();
        for i in 0..200 {
            let r = ctl.share();
            let next = ctl.update(r * 4.5, (1.0 - r) * 1.0);
            if next != last {
                settled_at = i + 1;
            }
            last = next;
        }
        t.row(&[
            format!("{}%", fnum(step * 100.0, 0)),
            settled_at.to_string(),
            format!("{}%", fnum(ctl.share() * 100.0, 1)),
            ctl.holds().to_string(),
        ]);
    }
    t
}

/// Safeguard on/off on the paper's 12.5 % off-grid optimum example.
fn safeguard_table() -> Table {
    let mut t = Table::new(
        "Ablation — oscillation safeguard (off-grid optimum at 12.5%)",
        &["safeguard", "ratio moves in final 20 iterations", "behaviour"],
    );
    for (label, safeguard) in [("on", true), ("off", false)] {
        let mut ctl = DivisionController::new(
            0.10,
            DivisionParams {
                safeguard,
                ..DivisionParams::default()
            },
        );
        let mut trace = Vec::new();
        for _ in 0..40 {
            let r = ctl.share();
            trace.push(r);
            ctl.update(r * 7.0, (1.0 - r) * 1.0);
        }
        let tail_moves = trace[20..].windows(2).filter(|w| w[0] != w[1]).count();
        t.row(&[
            label.to_string(),
            tail_moves.to_string(),
            if tail_moves == 0 {
                "stable"
            } else {
                "oscillating 10% ↔ 15%"
            }
            .to_string(),
        ]);
    }
    t
}

/// Convergence independence from the initial ratio (paper Fig. 7 claim).
fn initial_ratio_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — initial division ratio independence (hotspot)",
        &["initial share", "final share", "iterations to final"],
    );
    for initial in [0.0, 0.10, 0.30, 0.50, 0.70, 0.90] {
        let cfg = GreenGpuConfig {
            initial_share: initial,
            ..GreenGpuConfig::division_only()
        };
        // Give far starts enough iterations to walk home.
        let mut wl = Hotspot::with_params(seed, 32, 32, 2048.0 * 2048.0, 40, 300.0, 30);
        let report = run_with_config(&mut wl, cfg, RunConfig::sweep());
        let final_share = report.iterations.last().unwrap().cpu_share;
        let reached = report
            .iterations
            .iter()
            .position(|it| (it.cpu_share - final_share).abs() < 1e-12)
            .unwrap();
        t.row(&[
            format!("{}%", fnum(initial * 100.0, 0)),
            format!("{}%", fnum(final_share * 100.0, 0)),
            (reached + 1).to_string(),
        ]);
    }
    t
}

/// Step-wise vs model-based division on the two paper workloads.
fn division_algo_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — step-wise heuristic vs model-based jump (division only)",
        &[
            "workload",
            "algorithm",
            "iterations to final share",
            "final share",
            "energy (kJ)",
        ],
    );
    for (name, make) in [
        (
            "kmeans",
            &(|s| Box::new(KMeans::paper(s)) as Box<dyn greengpu_workloads::Workload>)
                as &dyn Fn(u64) -> Box<dyn greengpu_workloads::Workload>,
        ),
        (
            "hotspot",
            &(|s| Box::new(Hotspot::paper(s)) as Box<dyn greengpu_workloads::Workload>),
        ),
    ] {
        for (label, algo) in [
            ("stepwise", DivisionAlgo::Stepwise),
            ("model-based", DivisionAlgo::ModelBased),
        ] {
            let cfg = GreenGpuConfig {
                division_algo: algo,
                ..GreenGpuConfig::division_only()
            };
            let mut wl = make(seed);
            let report = run_with_config(wl.as_mut(), cfg, RunConfig::sweep());
            let final_share = report.iterations.last().unwrap().cpu_share;
            let reached = report
                .iterations
                .iter()
                .position(|it| (it.cpu_share - final_share).abs() < 1e-12)
                .unwrap();
            t.row(&[
                name.to_string(),
                label.to_string(),
                (reached + 1).to_string(),
                format!("{}%", fnum(final_share * 100.0, 0)),
                fnum(report.total_energy_j() / 1e3, 1),
            ]);
        }
    }
    t
}

/// WMA history (λ) sweep: adaptation latency after a full signature flip.
fn history_table() -> Table {
    let mut t = Table::new(
        "Ablation — WMA history λ (intervals to re-adapt after a signature flip)",
        &["history λ", "intervals until argmax follows", "note"],
    );
    for history in [0.5, 0.8, 0.95, 1.0] {
        let mut s = WmaScaler::new(
            6,
            6,
            WmaParams {
                history,
                ..WmaParams::default()
            },
        );
        for _ in 0..50 {
            s.observe(1.0, 1.0);
        }
        let mut count = 0;
        while s.argmax() != (0, 0) && count < 10_000 {
            s.observe(0.0, 0.0);
            count += 1;
        }
        t.row(&[
            fnum(history, 2),
            count.to_string(),
            // lint:allow(float_eq) annotating the exact swept literal, not a computed value
            if history == 1.0 {
                "verbatim Eq. 4 (unbounded memory)"
            } else {
                ""
            }
            .to_string(),
        ]);
    }
    t
}

/// 8-bit quantized table agreement rate over random utilization traces.
fn quantized_table(seed: u64) -> Table {
    use greengpu::quantized::QuantizedWma;
    let mut rng = Pcg32::seeded(seed);
    let mut exact = 0usize;
    let mut within_one = 0usize;
    let trials = 200;
    for _ in 0..trials {
        let base_c = rng.next_f64();
        let base_m = rng.next_f64();
        let mut q = QuantizedWma::new(6, 6, WmaParams::default());
        let mut f = WmaScaler::new(6, 6, WmaParams::default());
        let mut qp = (0, 0);
        let mut fp = (0, 0);
        for _ in 0..25 {
            let uc = (base_c + rng.uniform(-0.05, 0.05)).clamp(0.0, 1.0);
            let um = (base_m + rng.uniform(-0.05, 0.05)).clamp(0.0, 1.0);
            qp = q.observe(uc, um);
            fp = f.observe(uc, um);
        }
        if qp == fp {
            exact += 1;
        }
        if qp.0.abs_diff(fp.0) <= 1 && qp.1.abs_diff(fp.1) <= 1 {
            within_one += 1;
        }
    }
    let mut t = Table::new(
        "Ablation — 8-bit fixed-point weight table vs f64 reference (§VI sketch)",
        &["agreement", "rate"],
    );
    t.row(&["identical pair".to_string(), pct(exact as f64 / trials as f64)]);
    t.row(&["within one level".to_string(), pct(within_one as f64 / trials as f64)]);
    t.row(&["table storage".to_string(), "36 bytes (6×6×8 bit)".to_string()]);
    t
}

/// Online WMA regret vs the exhaustive 36-pair static oracle.
fn oracle_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — WMA regret vs the exhaustive static frequency oracle (5% slowdown budget)",
        &[
            "workload",
            "oracle GPU energy (kJ)",
            "WMA GPU energy (kJ)",
            "energy regret",
            "time vs oracle",
        ],
    );
    for name in ["kmeans", "lud", "PF", "hotspot", "srad_v2", "streamcluster"] {
        let regret = wma_regret(|| registry::by_name(name, seed).expect("registered"), 0.05);
        t.row(&[
            name.to_string(),
            fnum(regret.oracle_energy_j / 1e3, 1),
            fnum(regret.wma_energy_j / 1e3, 1),
            signed_pct(regret.energy_regret()),
            signed_pct(regret.time_delta()),
        ]);
    }
    t
}

/// CPU governor comparison under asynchronous communication (where the
/// CPU governor actually has slack to exploit).
fn governor_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — CPU governors under asynchronous CPU-GPU communication (streamcluster)",
        &["governor", "box energy (kJ)", "system energy (kJ)", "time (s)"],
    );
    let mut cfg = RunConfig::sweep();
    cfg.comm_mode = CommMode::Async;
    let base = run_best_performance_with(&mut StreamCluster::paper(seed), cfg.clone());
    t.row(&[
        "none (peak pinned)".to_string(),
        fnum(base.cpu_energy_j / 1e3, 1),
        fnum(base.total_energy_j() / 1e3, 1),
        fnum(base.total_time.as_secs_f64(), 1),
    ]);
    for kind in [
        GovernorKind::Ondemand,
        GovernorKind::Conservative,
        GovernorKind::Proportional,
        GovernorKind::Powersave,
        GovernorKind::Performance,
    ] {
        let gcfg = GreenGpuConfig {
            governor: kind,
            gpu_scaling: false,
            ..GreenGpuConfig::scaling_only()
        };
        let report = run_with_config(&mut StreamCluster::paper(seed), gcfg, cfg.clone());
        let label = match kind {
            GovernorKind::Ondemand => "ondemand (paper)",
            GovernorKind::Conservative => "conservative",
            GovernorKind::Proportional => "proportional (Wu et al.-style)",
            GovernorKind::Powersave => "powersave",
            GovernorKind::Performance => "performance",
        };
        t.row(&[
            label.to_string(),
            fnum(report.cpu_energy_j / 1e3, 1),
            fnum(report.total_energy_j() / 1e3, 1),
            fnum(report.total_time.as_secs_f64(), 1),
        ]);
    }
    t
}

/// Tier-decoupling sweep (§IV): the paper configures the division
/// interval ≥ 40× the DVFS interval so the scaling loop settles well
/// inside each division interval. Here the division cadence is fixed
/// (hotspot's ~40 s iterations) and the DVFS interval grows toward it:
/// with few scaling samples per iteration the scaler reacts to stale,
/// division-mixed windows and spends longer at the wrong clocks.
fn decoupling_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — tier decoupling: DVFS interval vs ~40 s division interval (hotspot holistic)",
        &[
            "DVFS interval",
            "division/DVFS ratio",
            "final share",
            "energy (kJ)",
            "vs 3 s interval",
        ],
    );
    let mut rows = Vec::new();
    for &(period_s, label) in &[(3u64, "3 s (paper)"), (12, "12 s"), (40, "40 s")] {
        let cfg = GreenGpuConfig {
            dvfs_period: greengpu_sim::SimDuration::from_secs(period_s),
            ..GreenGpuConfig::holistic()
        };
        let mut wl = Hotspot::paper(seed);
        let report = run_with_config(&mut wl, cfg, RunConfig::sweep());
        let final_share = report.iterations.last().unwrap().cpu_share;
        rows.push((label, 40.0 / period_s as f64, final_share, report.total_energy_j()));
    }
    let reference = rows[0].3;
    for (label, ratio, share, energy) in rows {
        t.row(&[
            label.to_string(),
            format!("~{}x", fnum(ratio, 0)),
            format!("{}%", fnum(share * 100.0, 0)),
            fnum(energy / 1e3, 1),
            signed_pct(energy / reference - 1.0),
        ]);
    }
    t
}

/// Coordination ablation: the paper's central tier-2 claim is that GPU
/// cores and memory must be throttled *in coordination*. φ at the
/// extremes degenerates the loss to a single domain — the other domain's
/// level is then chosen blind (ties break to the lowest level), which is
/// exactly the "naive solution may over-throttle" failure §I warns about.
fn coordination_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — coordinated vs single-domain loss (φ extremes)",
        &["workload", "φ", "meaning", "GPU saving", "time delta"],
    );
    for (name, make) in [
        (
            "kmeans",
            &(|s| Box::new(KMeans::paper(s)) as Box<dyn greengpu_workloads::Workload>)
                as &dyn Fn(u64) -> Box<dyn greengpu_workloads::Workload>,
        ),
        (
            "streamcluster",
            &(|s| Box::new(StreamCluster::paper(s)) as Box<dyn greengpu_workloads::Workload>),
        ),
    ] {
        let base = run_best_performance_with(make(seed).as_mut(), RunConfig::sweep());
        for (phi, meaning) in [
            (0.3, "coordinated (paper)"),
            (1.0, "core-only loss"),
            (0.0, "memory-only loss"),
        ] {
            let cfg = GreenGpuConfig {
                wma_params: WmaParams {
                    phi,
                    ..WmaParams::default()
                },
                ..GreenGpuConfig::scaling_only()
            };
            let ours = run_with_config(make(seed).as_mut(), cfg, RunConfig::sweep());
            let saving = 1.0 - ours.gpu_energy_j / base.gpu_energy_j;
            let dt = ours.total_time.as_secs_f64() / base.total_time.as_secs_f64() - 1.0;
            t.row(&[
                name.to_string(),
                fnum(phi, 1),
                meaning.to_string(),
                pct(saving),
                signed_pct(dt),
            ]);
        }
    }
    t
}

/// Reclock-stall sweep: does actuation overhead erase the scaling tier's
/// savings? Sweeps the per-transition GPU stall on streamcluster (the
/// most actuation-heavy workload) and reports the net saving.
fn reclock_stall_table(seed: u64) -> Table {
    let mut t = Table::new(
        "Ablation — GPU reclock stall vs net scaling saving (streamcluster)",
        &["stall per transition", "GPU energy saving", "time delta"],
    );
    let base = run_best_performance_with(&mut StreamCluster::paper(seed), RunConfig::sweep());
    for stall_ms in [0.0, 50.0, 200.0, 500.0] {
        let mut cfg = RunConfig::sweep();
        cfg.reclock_stall_s = stall_ms / 1000.0;
        let ours = run_with_config(&mut StreamCluster::paper(seed), GreenGpuConfig::scaling_only(), cfg);
        let saving = 1.0 - ours.gpu_energy_j / base.gpu_energy_j;
        let dt = ours.total_time.as_secs_f64() / base.total_time.as_secs_f64() - 1.0;
        t.row(&[format!("{} ms", fnum(stall_ms, 0)), pct(saving), signed_pct(dt)]);
    }
    t
}

/// DVFS what-if (§VII-C): "If DVFS is enabled, we expect more energy
/// saving can be achieved from frequency scaling." Rerun the scaling tier
/// on a voltage-scaling variant of the card and compare.
fn dvfs_whatif_table(seed: u64) -> Table {
    use greengpu_hw::calib::{geforce_dvfs_whatif, phenom_ii_x2};
    use greengpu_hw::Platform;
    let mut t = Table::new(
        "Ablation — frequency-only card vs DVFS what-if (scaling tier, §VII-C expectation)",
        &["workload", "freq-only GPU saving", "DVFS GPU saving", "gain"],
    );
    for name in ["kmeans", "lud", "PF", "streamcluster"] {
        // Frequency-only (the paper's card).
        let base = run_best_performance_with(
            registry::by_name(name, seed).expect("registered").as_mut(),
            RunConfig::sweep(),
        );
        let ours = run_with_config(
            registry::by_name(name, seed).expect("registered").as_mut(),
            GreenGpuConfig::scaling_only(),
            RunConfig::sweep(),
        );
        let freq_saving = 1.0 - ours.gpu_energy_j / base.gpu_energy_j;
        // DVFS what-if: same baseline envelope at peak, V²·f off-peak.
        let dvfs_base = run_on_platform(
            registry::by_name(name, seed).expect("registered").as_mut(),
            GreenGpuConfig {
                division: false,
                gpu_scaling: false,
                cpu_scaling: false,
                initial_share: 0.0,
                ..GreenGpuConfig::default()
            },
            RunConfig::sweep(),
            Platform::new(geforce_dvfs_whatif(), phenom_ii_x2(), 5, 5, 3),
        );
        let dvfs_ours = run_on_platform(
            registry::by_name(name, seed).expect("registered").as_mut(),
            GreenGpuConfig::scaling_only(),
            RunConfig::sweep(),
            Platform::new(geforce_dvfs_whatif(), phenom_ii_x2(), 0, 0, 3),
        );
        let dvfs_saving = 1.0 - dvfs_ours.gpu_energy_j / dvfs_base.gpu_energy_j;
        t.row(&[
            name.to_string(),
            pct(freq_saving),
            pct(dvfs_saving),
            signed_pct(dvfs_saving - freq_saving),
        ]);
    }
    t
}

/// Autotune landscape: grid-search α/φ on a mixed calibration set (the
/// paper's manual-tuning procedure, automated — its named future work)
/// and report where the paper's defaults rank.
fn autotune_table(seed: u64) -> Table {
    let make_set = || {
        ["kmeans", "streamcluster", "PF"]
            .iter()
            .map(|n| registry::by_name(n, seed).expect("registered"))
            .collect()
    };
    let result = tune(make_set, &TuneGrid::default());
    let mut ranked: Vec<_> = result.points.iter().collect();
    ranked.sort_by(|a, b| a.score_edp.partial_cmp(&b.score_edp).expect("finite"));
    let default_rank = ranked
        .iter()
        .position(|p| {
            (p.params.alpha_core - 0.15).abs() < 1e-12
                && (p.params.alpha_mem - 0.02).abs() < 1e-12
                && (p.params.phi - 0.3).abs() < 1e-12
        })
        .map(|i| i + 1)
        .unwrap_or(0);
    let mut t = Table::new(
        format!("Ablation — autotuned WMA parameters (27-point grid; paper defaults rank {default_rank}/27)"),
        &[
            "rank",
            "alpha_core",
            "alpha_mem",
            "phi",
            "normalized EDP (sum of 3 workloads)",
        ],
    );
    for (i, p) in ranked.iter().take(5).enumerate() {
        t.row(&[
            (i + 1).to_string(),
            fnum(p.params.alpha_core, 2),
            fnum(p.params.alpha_mem, 2),
            fnum(p.params.phi, 2),
            fnum(p.score_edp, 4),
        ]);
    }
    t
}

/// Runs all ablations.
pub fn run(seed: u64) -> ExperimentOutput {
    ExperimentOutput {
        id: "ablations",
        title: "Design-choice ablations (division step/safeguard/algorithm, WMA λ, 8-bit table, oracle regret, governors)",
        tables: vec![
            division_step_table(),
            safeguard_table(),
            initial_ratio_table(seed),
            division_algo_table(seed),
            history_table(),
            quantized_table(seed),
            oracle_table(seed),
            governor_table(seed),
            decoupling_table(seed),
            reclock_stall_table(seed),
            coordination_table(seed),
            autotune_table(seed),
            dvfs_whatif_table(seed),
        ],
        notes: vec![
            "Small steps converge slowly, large steps settle off-balance — the paper's 5% is the documented trade-off.".to_string(),
            "The safeguard converts the 10%↔15% ping-pong of the off-grid optimum into a stable hold (paper §V-B).".to_string(),
            "The model-based jump reaches the balance ratio in one iteration; both algorithms land on the same final share.".to_string(),
            "Verbatim Eq. 4 (λ=1) needs orders of magnitude longer to re-adapt after a workload change.".to_string(),
            "DVFS what-if: voltage scaling roughly doubles-to-triples the scaling tier's savings, confirming the paper's §VII-C expectation.".to_string(),
            "The online WMA tracks the exhaustive 36-pair oracle within a few percent of GPU energy on stationary workloads.".to_string(),
            "Coordination matters: collapsing the loss to one domain leaves the other at its lowest level, inflating execution time exactly as §I's naive-throttling warning predicts.".to_string(),
            "Reclock stalls up to ~200 ms per transition leave the scaling savings intact at the 3 s interval; the tier tolerates realistic actuation costs.".to_string(),
            "Tier decoupling: a DVFS interval much shorter than the division interval (the paper's ≥40x rule) lets the scaler settle inside each iteration; stretching it toward the iteration length leaves the GPU at stale clocks and costs energy (paper §IV).".to_string(),
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ablation_tables_render() {
        let out = run(1);
        assert_eq!(out.tables.len(), 13);
        for t in &out.tables {
            assert!(!t.is_empty(), "{} empty", t.title());
        }
    }

    #[test]
    fn model_based_converges_at_least_as_fast_as_stepwise() {
        let t = division_algo_table(2);
        // Rows: kmeans/stepwise, kmeans/model, hotspot/stepwise, hotspot/model.
        let md = t.to_csv();
        let rows: Vec<&str> = md.lines().skip(1).collect();
        let iter_of = |row: &str| -> usize { row.split(',').nth(2).unwrap().parse().unwrap() };
        assert!(
            iter_of(rows[1]) <= iter_of(rows[0]),
            "kmeans: model slower than stepwise"
        );
        assert!(
            iter_of(rows[3]) <= iter_of(rows[2]),
            "hotspot: model slower than stepwise"
        );
    }

    #[test]
    fn governors_order_energy_sensibly() {
        let t = governor_table(3);
        let csv = t.to_csv();
        let energy_of = |name: &str| -> f64 {
            csv.lines()
                .find(|l| l.starts_with(name) || l.contains(name))
                .unwrap()
                .split(',')
                .nth(1)
                .unwrap()
                .parse()
                .unwrap()
        };
        // powersave burns the least box energy; performance the most.
        assert!(energy_of("powersave") < energy_of("performance"));
        assert!(energy_of("ondemand") <= energy_of("performance"));
    }
}

#[cfg(test)]
mod coordination_tests {
    use super::*;

    #[test]
    fn uncoordinated_loss_hurts_the_blinded_domain() {
        // φ=1 ignores memory losses → memory parks at its lowest level →
        // memory-bound SC stretches. φ=0 ignores core losses → core parks
        // lowest → compute-heavy kmeans stretches.
        let seed = 6;
        let time_of = |phi: f64, make: &dyn Fn(u64) -> Box<dyn greengpu_workloads::Workload>| {
            let cfg = GreenGpuConfig {
                wma_params: WmaParams {
                    phi,
                    ..WmaParams::default()
                },
                ..GreenGpuConfig::scaling_only()
            };
            let mut wl = make(seed);
            run_with_config(wl.as_mut(), cfg, RunConfig::sweep())
                .total_time
                .as_secs_f64()
        };
        let km: &dyn Fn(u64) -> Box<dyn greengpu_workloads::Workload> = &|s| Box::new(KMeans::paper(s));
        let sc: &dyn Fn(u64) -> Box<dyn greengpu_workloads::Workload> = &|s| Box::new(StreamCluster::paper(s));
        // Coordinated is near-neutral on both.
        let km_coord = time_of(0.3, km);
        let sc_coord = time_of(0.3, sc);
        // Blinding the core domain tanks the compute-heavy workload.
        let km_blind = time_of(0.0, km);
        assert!(
            km_blind > km_coord * 1.10,
            "kmeans with memory-only loss: {km_blind} vs coordinated {km_coord}"
        );
        // Blinding the memory domain tanks the memory-bound workload.
        let sc_blind = time_of(1.0, sc);
        assert!(
            sc_blind > sc_coord * 1.10,
            "SC with core-only loss: {sc_blind} vs coordinated {sc_coord}"
        );
    }
}

#[cfg(test)]
mod dvfs_whatif_tests {
    use super::*;

    #[test]
    fn dvfs_card_amplifies_every_workloads_saving() {
        // §VII-C: "If DVFS is enabled, we expect more energy saving can be
        // achieved from frequency scaling."
        let t = dvfs_whatif_table(4);
        for line in t.to_csv().lines().skip(1) {
            let gain: f64 = line
                .split(',')
                .nth(3)
                .unwrap()
                .trim_end_matches('%')
                .trim_start_matches('+')
                .parse()
                .unwrap();
            assert!(gain > 2.0, "DVFS gain too small on: {line}");
        }
    }
}
