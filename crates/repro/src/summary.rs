//! Serializable run summaries for the CLI's `--json` output.

use greengpu_runtime::{IterationRecord, RunReport};
use greengpu_sim::SimTime;

/// A machine-readable snapshot of a run: totals, final clocks, and the
/// per-iteration rows.
#[derive(Debug, Clone)]
pub struct ReportSummary {
    /// Workload name.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Seed used.
    pub seed: u64,
    /// Total virtual time, seconds.
    pub total_time_s: f64,
    /// GPU-side energy (Meter 2), joules.
    pub gpu_energy_j: f64,
    /// CPU-side energy (Meter 1), joules.
    pub cpu_energy_j: f64,
    /// Whole-system energy, joules.
    pub total_energy_j: f64,
    /// Mean system power, watts.
    pub mean_power_w: f64,
    /// Final GPU core clock, MHz.
    pub final_core_mhz: f64,
    /// Final GPU memory clock, MHz.
    pub final_mem_mhz: f64,
    /// Final CPU P-state frequency, MHz.
    pub final_cpu_mhz: f64,
    /// Functional result digest (0 in sweep mode).
    pub digest: f64,
    /// Seconds of CPU spin-wait.
    pub spin_s: f64,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// 1 Hz GPU power samples (what Meter 2 would log), truncated to the
    /// first `max_samples`.
    pub gpu_power_1hz_w: Vec<f64>,
}

/// Cap on exported 1 Hz samples (long runs stay manageable).
pub const MAX_POWER_SAMPLES: usize = 3600;

/// Escapes a string for embedding in a JSON document.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Formats an `f64` so that parsing the text back yields the identical bit
/// pattern (shortest round-trip repr; JSON has no NaN/Inf, so those become
/// `null`).
fn json_f64(v: f64) -> String {
    if v.is_finite() {
        let s = format!("{v}");
        // `{}` on an f64 already round-trips in Rust, but bare integers
        // (e.g. "3") are still valid JSON numbers — keep them as-is.
        s
    } else {
        "null".to_string()
    }
}

impl ReportSummary {
    /// Builds a summary from a run report.
    pub fn from_report(workload: &str, policy: &str, seed: u64, report: &RunReport) -> Self {
        let secs = report.total_time.as_secs_f64().ceil() as usize;
        let n = secs.min(MAX_POWER_SAMPLES);
        let log = report
            .platform
            .gpu_meter()
            .sample_log(SimTime::ZERO, greengpu_sim::SimDuration::from_secs(1), n);
        ReportSummary {
            workload: workload.to_string(),
            policy: policy.to_string(),
            seed,
            total_time_s: report.total_time.as_secs_f64(),
            gpu_energy_j: report.gpu_energy_j,
            cpu_energy_j: report.cpu_energy_j,
            total_energy_j: report.total_energy_j(),
            mean_power_w: report.mean_power_w(),
            final_core_mhz: report.platform.gpu().core().current_mhz(),
            final_mem_mhz: report.platform.gpu().mem().current_mhz(),
            final_cpu_mhz: report.platform.cpu().domain().current_mhz(),
            digest: report.digest,
            spin_s: report.spin_seconds(),
            iterations: report.iterations.clone(),
            gpu_power_1hz_w: log.values().to_vec(),
        }
    }

    /// Renders the summary as a pretty-printed JSON document.
    ///
    /// Hand-rolled (no serde): every number uses Rust's shortest
    /// round-trip float formatting, so `parse::<f64>()` on the emitted
    /// text recovers the exact bit pattern.
    pub fn to_json_pretty(&self) -> String {
        let mut s = String::with_capacity(4096);
        s.push_str("{\n");
        s.push_str(&format!("  \"workload\": \"{}\",\n", json_escape(&self.workload)));
        s.push_str(&format!("  \"policy\": \"{}\",\n", json_escape(&self.policy)));
        s.push_str(&format!("  \"seed\": {},\n", self.seed));
        s.push_str(&format!("  \"total_time_s\": {},\n", json_f64(self.total_time_s)));
        s.push_str(&format!("  \"gpu_energy_j\": {},\n", json_f64(self.gpu_energy_j)));
        s.push_str(&format!("  \"cpu_energy_j\": {},\n", json_f64(self.cpu_energy_j)));
        s.push_str(&format!("  \"total_energy_j\": {},\n", json_f64(self.total_energy_j)));
        s.push_str(&format!("  \"mean_power_w\": {},\n", json_f64(self.mean_power_w)));
        s.push_str(&format!("  \"final_core_mhz\": {},\n", json_f64(self.final_core_mhz)));
        s.push_str(&format!("  \"final_mem_mhz\": {},\n", json_f64(self.final_mem_mhz)));
        s.push_str(&format!("  \"final_cpu_mhz\": {},\n", json_f64(self.final_cpu_mhz)));
        s.push_str(&format!("  \"digest\": {},\n", json_f64(self.digest)));
        s.push_str(&format!("  \"spin_s\": {},\n", json_f64(self.spin_s)));
        s.push_str("  \"iterations\": [\n");
        for (i, it) in self.iterations.iter().enumerate() {
            s.push_str(&format!(
                "    {{\"index\": {}, \"cpu_share\": {}, \"tc_s\": {}, \"tg_s\": {}, \
                 \"start_us\": {}, \"end_us\": {}, \"energy_j\": {}}}{}\n",
                it.index,
                json_f64(it.cpu_share),
                json_f64(it.tc_s),
                json_f64(it.tg_s),
                it.start.0,
                it.end.0,
                json_f64(it.energy_j),
                if i + 1 < self.iterations.len() { "," } else { "" }
            ));
        }
        s.push_str("  ],\n");
        s.push_str("  \"gpu_power_1hz_w\": [");
        for (i, w) in self.gpu_power_1hz_w.iter().enumerate() {
            if i > 0 {
                s.push_str(", ");
            }
            s.push_str(&json_f64(*w));
        }
        s.push_str("]\n}");
        s
    }

    /// Extracts the raw text of a top-level scalar field from JSON emitted
    /// by [`ReportSummary::to_json_pretty`] (test/replay helper — not a
    /// general JSON parser).
    pub fn json_field<'a>(json: &'a str, name: &str) -> Option<&'a str> {
        let key = format!("\"{name}\":");
        let at = json.find(&key)? + key.len();
        let rest = json[at..].trim_start();
        let end = rest.find([',', '\n', '}']).unwrap_or(rest.len());
        Some(rest[..end].trim().trim_matches('"'))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu::baselines::run_best_performance;
    use greengpu_workloads::kmeans::KMeans;

    #[test]
    fn summary_round_trips_through_json() {
        let report = run_best_performance(&mut KMeans::small(1));
        let summary = ReportSummary::from_report("kmeans", "default", 1, &report);
        let json = summary.to_json_pretty();
        assert_eq!(ReportSummary::json_field(&json, "workload"), Some("kmeans"));
        assert_eq!(
            ReportSummary::json_field(&json, "seed").and_then(|s| s.parse::<u64>().ok()),
            Some(1)
        );
        assert_eq!(json.matches("\"index\":").count(), summary.iterations.len());
        // Rust's shortest float formatting round-trips exactly.
        let back: f64 = ReportSummary::json_field(&json, "total_energy_j")
            .expect("field present")
            .parse()
            .expect("parses as f64");
        assert_eq!(back, summary.total_energy_j, "energy must round-trip bit-exactly");
    }

    #[test]
    fn power_samples_are_bounded_and_positive() {
        let report = run_best_performance(&mut KMeans::small(2));
        let summary = ReportSummary::from_report("kmeans", "default", 2, &report);
        assert!(!summary.gpu_power_1hz_w.is_empty());
        assert!(summary.gpu_power_1hz_w.len() <= MAX_POWER_SAMPLES);
        assert!(summary.gpu_power_1hz_w.iter().all(|&w| w > 0.0));
    }
}
