//! Serializable run summaries for the CLI's `--json` output.

use greengpu_runtime::{IterationRecord, RunReport};
use greengpu_sim::SimTime;
use serde::{Deserialize, Serialize};

/// A machine-readable snapshot of a run: totals, final clocks, and the
/// per-iteration rows.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ReportSummary {
    /// Workload name.
    pub workload: String,
    /// Policy label.
    pub policy: String,
    /// Seed used.
    pub seed: u64,
    /// Total virtual time, seconds.
    pub total_time_s: f64,
    /// GPU-side energy (Meter 2), joules.
    pub gpu_energy_j: f64,
    /// CPU-side energy (Meter 1), joules.
    pub cpu_energy_j: f64,
    /// Whole-system energy, joules.
    pub total_energy_j: f64,
    /// Mean system power, watts.
    pub mean_power_w: f64,
    /// Final GPU core clock, MHz.
    pub final_core_mhz: f64,
    /// Final GPU memory clock, MHz.
    pub final_mem_mhz: f64,
    /// Final CPU P-state frequency, MHz.
    pub final_cpu_mhz: f64,
    /// Functional result digest (0 in sweep mode).
    pub digest: f64,
    /// Seconds of CPU spin-wait.
    pub spin_s: f64,
    /// Per-iteration records.
    pub iterations: Vec<IterationRecord>,
    /// 1 Hz GPU power samples (what Meter 2 would log), truncated to the
    /// first `max_samples`.
    pub gpu_power_1hz_w: Vec<f64>,
}

/// Cap on exported 1 Hz samples (long runs stay manageable).
pub const MAX_POWER_SAMPLES: usize = 3600;

impl ReportSummary {
    /// Builds a summary from a run report.
    pub fn from_report(workload: &str, policy: &str, seed: u64, report: &RunReport) -> Self {
        let secs = report.total_time.as_secs_f64().ceil() as usize;
        let n = secs.min(MAX_POWER_SAMPLES);
        let log = report
            .platform
            .gpu_meter()
            .sample_log(SimTime::ZERO, greengpu_sim::SimDuration::from_secs(1), n);
        ReportSummary {
            workload: workload.to_string(),
            policy: policy.to_string(),
            seed,
            total_time_s: report.total_time.as_secs_f64(),
            gpu_energy_j: report.gpu_energy_j,
            cpu_energy_j: report.cpu_energy_j,
            total_energy_j: report.total_energy_j(),
            mean_power_w: report.mean_power_w(),
            final_core_mhz: report.platform.gpu().core().current_mhz(),
            final_mem_mhz: report.platform.gpu().mem().current_mhz(),
            final_cpu_mhz: report.platform.cpu().domain().current_mhz(),
            digest: report.digest,
            spin_s: report.spin_seconds(),
            iterations: report.iterations.clone(),
            gpu_power_1hz_w: log.values().to_vec(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu::baselines::run_best_performance;
    use greengpu_workloads::kmeans::KMeans;

    #[test]
    fn summary_round_trips_through_json() {
        let report = run_best_performance(&mut KMeans::small(1));
        let summary = ReportSummary::from_report("kmeans", "default", 1, &report);
        let json = serde_json::to_string(&summary).expect("serialize");
        let back: ReportSummary = serde_json::from_str(&json).expect("deserialize");
        assert_eq!(back.workload, "kmeans");
        assert_eq!(back.iterations.len(), summary.iterations.len());
        // JSON float formatting round-trips within one ULP.
        let rel = (back.total_energy_j - summary.total_energy_j).abs() / summary.total_energy_j;
        assert!(rel < 1e-12, "energy drifted by {rel}");
    }

    #[test]
    fn power_samples_are_bounded_and_positive() {
        let report = run_best_performance(&mut KMeans::small(2));
        let summary = ReportSummary::from_report("kmeans", "default", 2, &report);
        assert!(!summary.gpu_power_1hz_w.is_empty());
        assert!(summary.gpu_power_1hz_w.len() <= MAX_POWER_SAMPLES);
        assert!(summary.gpu_power_1hz_w.iter().all(|&w| w > 0.0));
    }
}
