//! # greengpu-repro — regenerating the paper's tables and figures
//!
//! One function per table/figure of the GreenGPU paper's evaluation,
//! producing the same rows/series the paper reports from the simulated
//! testbed. The `repro` binary prints them as markdown and can write CSVs
//! for plotting; `greengpu-bench` reuses the same functions under
//! Criterion.
//!
//! | Experiment | Paper content |
//! |---|---|
//! | [`fig1`] | normalized time & relative energy vs GPU memory/core frequency (nbody, streamcluster) |
//! | [`fig2`] | system energy vs CPU work share for kmeans |
//! | [`fig5`] | frequency-scaling trace for streamcluster (utils, clocks, power) |
//! | [`fig6`] | per-workload energy savings of the scaling tier (GPU, dynamic, CPU+GPU emulated) |
//! | [`fig7`] | workload-division traces for kmeans & hotspot |
//! | [`fig8`] | holistic vs single-tier per-iteration energy + headline savings |
//! | [`tables::table1`] | the WMA loss function |
//! | [`tables::table2`] | the workload inventory |
//! | [`static_search`] | the §VII-B exhaustive static-division search |
//! | [`ablations`] | design-choice ablations (step size, safeguard, λ, 8-bit table, oracle regret, governors) |
//! | [`scorecard`] | every quantitative claim, measured and judged against its acceptance band |

#![forbid(unsafe_code)]

pub mod experiments;
pub mod policies;
pub mod summary;

pub use experiments::{
    ablations, fig1, fig2, fig5, fig6, fig7, fig8, scorecard, static_search, tables, ExperimentOutput,
};
