//! Policy dispatch shared by the `greengpu-run` CLI and tests.

use greengpu::baselines::{run_best_performance_with, run_pinned, run_static_division, run_with_config};
use greengpu::{DivisionAlgo, GovernorKind, GreenGpuConfig};
use greengpu_runtime::{RunConfig, RunReport};
use greengpu_workloads::Workload;

/// Runs `workload` under a policy string:
/// `greengpu | division | scaling | default | static:<pct> | pinned:<core>,<mem>`.
pub fn run_policy(
    workload: &mut dyn Workload,
    policy: &str,
    governor: GovernorKind,
    division_algo: DivisionAlgo,
    run_cfg: RunConfig,
) -> Result<RunReport, String> {
    let cfg_base = GreenGpuConfig {
        governor,
        division_algo,
        ..GreenGpuConfig::holistic()
    };
    let report = match policy {
        "greengpu" => run_with_config(workload, cfg_base, run_cfg),
        "division" => run_with_config(
            workload,
            GreenGpuConfig {
                gpu_scaling: false,
                cpu_scaling: false,
                ..cfg_base
            },
            run_cfg,
        ),
        "scaling" => run_with_config(
            workload,
            GreenGpuConfig {
                division: false,
                initial_share: 0.0,
                ..cfg_base
            },
            run_cfg,
        ),
        "default" => run_best_performance_with(workload, run_cfg),
        p if p.starts_with("static:") => {
            let pct: f64 = p["static:".len()..]
                .parse()
                .map_err(|e| format!("bad static share: {e}"))?;
            if !(0.0..=90.0).contains(&pct) {
                return Err(format!("static share {pct}% outside 0..=90"));
            }
            run_static_division(workload, pct / 100.0, run_cfg)
        }
        p if p.starts_with("pinned:") => {
            let rest = &p["pinned:".len()..];
            let (c, m) = rest
                .split_once(',')
                .ok_or("pinned policy needs core,mem level indices")?;
            let core: usize = c.parse().map_err(|e| format!("bad core level: {e}"))?;
            let mem: usize = m.parse().map_err(|e| format!("bad mem level: {e}"))?;
            if core > 5 || mem > 5 {
                return Err("levels are 0..=5".to_string());
            }
            run_pinned(workload, core, mem, run_cfg)
        }
        other => return Err(format!("unknown policy \'{other}\'")),
    };
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_workloads::kmeans::KMeans;

    fn run(policy: &str) -> Result<RunReport, String> {
        run_policy(
            &mut KMeans::small(1),
            policy,
            GovernorKind::Ondemand,
            DivisionAlgo::Stepwise,
            RunConfig::sweep(),
        )
    }

    #[test]
    fn all_named_policies_run() {
        for p in ["greengpu", "division", "scaling", "default"] {
            let report = run(p).unwrap_or_else(|e| panic!("{p}: {e}"));
            assert!(report.total_energy_j() > 0.0, "{p}");
        }
    }

    #[test]
    fn parameterized_policies_parse_and_run() {
        assert!(run("static:25").is_ok());
        assert!(run("pinned:3,4").is_ok());
    }

    #[test]
    fn invalid_policies_are_rejected_with_messages() {
        let err = |p: &str| match run(p) {
            Err(e) => e,
            Ok(_) => panic!("{p} unexpectedly succeeded"),
        };
        assert!(err("bogus").contains("unknown policy"));
        assert!(err("static:abc").contains("bad static share"));
        assert!(err("static:95").contains("outside"));
        assert!(err("pinned:9,9").contains("levels are"));
        assert!(err("pinned:3").contains("core,mem"));
    }

    #[test]
    fn policy_ordering_matches_the_paper() {
        let green = run("greengpu").unwrap().total_energy_j();
        let default = run("default").unwrap().total_energy_j();
        assert!(green < default);
    }
}
