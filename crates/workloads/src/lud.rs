//! `lud` — blocked LU decomposition (Rodinia).
//!
//! Table II: 10 iterations over an 8192×8192 matrix, medium core / low
//! memory utilization (the blocked kernels are cache-friendly, so DRAM
//! traffic is modest, while frequent per-block launches keep average core
//! utilization at mid-range).
//!
//! An iteration is one outer block step (diagonal factorization + panel
//! updates + trailing-matrix update); the functional matrix has exactly as
//! many block steps as the paper has iterations. Work shrinks quadratically
//! as the trailing submatrix shrinks, which the cost model reflects.
//! LU's data dependencies make it non-divisible.

use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

/// LU decomposition workload instance.
pub struct Lud {
    profile: WorkloadProfile,
    n: usize,
    block: usize,
    a: Vec<f64>,
    original: Vec<f64>,
    cost_n: f64,
    repeat: f64,
}

impl Lud {
    /// Paper preset: 8192×8192 charged to costs over 10 block steps;
    /// functional matrix 320×320 with 32-wide blocks (also 10 steps).
    pub fn paper(seed: u64) -> Self {
        Lud::with_params(seed, 320, 32, 8192.0, 12.0)
    }

    /// Small preset for fast tests (3 block steps).
    pub fn small(seed: u64) -> Self {
        Lud::with_params(seed, 96, 32, 96.0, 3.7e6)
    }

    /// Fully parameterized constructor. `n` must be a multiple of `block`.
    pub fn with_params(seed: u64, n: usize, block: usize, cost_n: f64, repeat: f64) -> Self {
        assert!(n.is_multiple_of(block) && block >= 2, "n must be a multiple of block");
        let mut rng = Pcg32::new(seed, 0x6c7564); // "lud"
        let mut a = vec![0.0f64; n * n];
        for x in a.iter_mut() {
            *x = rng.uniform(-1.0, 1.0);
        }
        // Diagonal dominance guarantees pivoting-free LU exists.
        for i in 0..n {
            a[i * n + i] = n as f64 + rng.uniform(0.0, 1.0);
        }
        Lud {
            profile: WorkloadProfile {
                name: "lud",
                enlargement: format!(
                    "{} iterations; {} by {} matrix",
                    n / block,
                    cost_n as u64,
                    cost_n as u64
                ),
                description: "Medium core utilization, low memory utilization",
                core_class: UtilClass::Medium,
                mem_class: UtilClass::Low,
                divisible: false,
            },
            original: a.clone(),
            a,
            n,
            block,
            cost_n,
            repeat,
        }
    }

    /// Number of block steps (= iterations).
    fn steps(&self) -> usize {
        self.n / self.block
    }

    /// Relative work weight of block step `k` (trailing submatrix shrinks;
    /// weights sum to 1).
    fn step_weight(&self, k: usize) -> f64 {
        let steps = self.steps() as f64;
        let rem = steps - k as f64;
        let total: f64 = (1..=self.steps()).map(|j| (j * j) as f64).sum();
        rem * rem / total
    }

    /// Reconstructs `L·U` from the in-place factors (tests only; O(n³)).
    pub fn reconstruct(&self) -> Vec<f64> {
        let n = self.n;
        let mut out = vec![0.0f64; n * n];
        for i in 0..n {
            for j in 0..n {
                // (L·U)[i][j] = Σ_k L[i][k]·U[k][j]; L is unit-lower
                // (k ≤ i, diag = 1), U is upper (k ≤ j).
                out[i * n + j] = (0..=i.min(j))
                    .map(|k| {
                        let l = if k == i { 1.0 } else { self.a[i * n + k] };
                        l * self.a[k * n + j]
                    })
                    .sum();
            }
        }
        out
    }

    /// The original matrix (tests only).
    pub fn original(&self) -> &[f64] {
        &self.original
    }
}

impl Workload for Lud {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.steps()
    }

    fn phases(&self, iter: usize) -> Vec<PhaseCost> {
        // Full decomposition costs 2/3·n³ flops; step `iter` carries its
        // quadratic share. Blocked kernels achieve ~12 flops per DRAM byte.
        let total_ops = (2.0 / 3.0) * self.cost_n * self.cost_n * self.cost_n * self.repeat;
        let ops = total_ops * self.step_weight(iter.min(self.steps() - 1));
        let bytes = ops / 12.0;
        let mut gpu = GpuPhase::new("block-step", ops, bytes, 0.50, 0.50, 0.0);
        gpu.host_floor_s = host_floor_for_gap_fraction(&gpu, &geforce_8800_gtx(), 0.39);
        let cpu = CpuSlice {
            ops: ops * 0.8,
            bytes: bytes * 0.5,
            eff: 0.75,
        };
        vec![PhaseCost { gpu, cpu }]
    }

    fn execute(&mut self, iter: usize, _cpu_share: f64) -> f64 {
        let n = self.n;
        let k0 = iter * self.block;
        if k0 >= n {
            return self.digest();
        }
        let k1 = (k0 + self.block).min(n);
        // Right-looking Gaussian elimination over columns [k0, k1).
        for k in k0..k1 {
            let pivot = self.a[k * n + k];
            debug_assert!(pivot.abs() > 1e-12, "zero pivot at {k}");
            for i in (k + 1)..n {
                let m = self.a[i * n + k] / pivot;
                self.a[i * n + k] = m;
                for j in (k + 1)..n {
                    self.a[i * n + j] -= m * self.a[k * n + j];
                }
            }
        }
        self.digest()
    }

    fn digest(&self) -> f64 {
        self.a.iter().map(|x| x.abs()).sum()
    }

    fn reset(&mut self) {
        self.a.copy_from_slice(&self.original);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{iteration_gpu_time_s, iteration_utilization};
    use crate::traits::check_phase;

    #[test]
    fn lu_reconstructs_original_matrix() {
        let mut lud = Lud::small(1);
        for i in 0..lud.iterations() {
            lud.execute(i, 0.0);
        }
        let rec = lud.reconstruct();
        let orig = lud.original();
        let max_err = rec.iter().zip(orig).map(|(r, o)| (r - o).abs()).fold(0.0f64, f64::max);
        assert!(max_err < 1e-8, "LU reconstruction error {max_err}");
    }

    #[test]
    fn factors_stay_finite() {
        let mut lud = Lud::small(2);
        for i in 0..lud.iterations() {
            lud.execute(i, 0.0);
        }
        assert!(lud.a.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn reset_reproduces_run() {
        let mut lud = Lud::small(3);
        lud.execute(0, 0.0);
        let d = lud.digest();
        lud.reset();
        lud.execute(0, 0.0);
        assert_eq!(d, lud.digest());
    }

    #[test]
    fn step_weights_sum_to_one_and_decrease() {
        let lud = Lud::paper(1);
        let w: Vec<f64> = (0..lud.iterations()).map(|k| lud.step_weight(k)).collect();
        let sum: f64 = w.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12, "weights sum {sum}");
        for pair in w.windows(2) {
            assert!(pair[0] > pair[1], "weights must shrink");
        }
    }

    #[test]
    fn phases_are_valid_and_shrink_over_iterations() {
        let lud = Lud::paper(1);
        let first = lud.phases(0)[0];
        let last = lud.phases(lud.iterations() - 1)[0];
        check_phase(&first);
        check_phase(&last);
        assert!(first.gpu.ops > last.gpu.ops * 10.0, "early steps dominate");
    }

    #[test]
    fn table2_utilization_class_holds() {
        let lud = Lud::paper(1);
        let (u_core, u_mem) = iteration_utilization(&lud.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        assert!(lud.profile().core_class.contains(u_core), "core util {u_core}");
        assert!(lud.profile().mem_class.contains(u_mem), "mem util {u_mem}");
    }

    #[test]
    fn paper_run_is_minutes_scale() {
        let lud = Lud::paper(1);
        let spec = geforce_8800_gtx();
        let total: f64 = (0..lud.iterations())
            .map(|i| iteration_gpu_time_s(&lud.phases(i), &spec, 576.0, 900.0))
            .sum();
        assert!((40.0..400.0).contains(&total), "total run {total} s");
    }

    #[test]
    fn paper_preset_has_ten_iterations() {
        assert_eq!(Lud::paper(1).iterations(), 10);
    }
}
