//! `kmeans` — Lloyd's k-means clustering (Rodinia).
//!
//! The paper's flagship division workload: Table II lists 988 040 data
//! points, medium core / low memory utilization; Fig. 2 sweeps the CPU
//! share and finds the energy minimum near 10 %; §VII-B reports the
//! time-balance convergence at 20/80 CPU/GPU against an energy-optimal
//! static 15/85.
//!
//! An *iteration* is one Lloyd step (assignment + centroid update) — the
//! natural reduction point the paper names for kmeans. Division splits the
//! assignment phase by points; each side accumulates partial per-cluster
//! sums and counts which are merged before the centroid update, exactly
//! like the pthread+CUDA port.

use crate::datasets::clustered_features;
use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

/// K-means workload instance.
pub struct KMeans {
    profile: WorkloadProfile,
    d: usize,
    k: usize,
    n_func: usize,
    points: Vec<f64>,
    centroids: Vec<f64>,
    initial_centroids: Vec<f64>,
    last_sse: f64,
    /// Paper-scale point count charged to the cost model (the functional
    /// arrays are a deterministic sample of this).
    cost_points: f64,
    /// Kernel invocations per iteration (the paper's enlargement for stable
    /// power readings).
    repeat: f64,
    iters: usize,
}

impl KMeans {
    /// Paper preset: 988 040 points (Table II), 34 features, 5 clusters —
    /// the Rodinia kdd_cup configuration. Functional arrays are sampled at
    /// 1/241 scale; costs are charged at full scale.
    pub fn paper(seed: u64) -> Self {
        KMeans::with_params(seed, 4096, 34, 5, 988_040.0, 4000.0, 12)
    }

    /// Small preset for fast tests: costs equal the functional size.
    pub fn small(seed: u64) -> Self {
        KMeans::with_params(seed, 256, 8, 4, 256.0, 1.2e7, 5)
    }

    /// Fully parameterized constructor.
    pub fn with_params(
        seed: u64,
        n_func: usize,
        d: usize,
        k: usize,
        cost_points: f64,
        repeat: f64,
        iters: usize,
    ) -> Self {
        assert!(n_func >= k && k >= 2, "need at least k points and 2 clusters");
        let mut rng = Pcg32::new(seed, KMEANS_STREAM);
        // kdd_cup-style features: well-separated anchors plus a fraction
        // of uninformative noise dimensions.
        let noise_dims = d / 8;
        let (points, _labels) = clustered_features(&mut rng, n_func, d, k, noise_dims);
        // Initial centroids: the first k points (deterministic, standard
        // Rodinia-style seeding).
        let initial_centroids: Vec<f64> = points[..k * d].to_vec();
        KMeans {
            profile: WorkloadProfile {
                name: "kmeans",
                enlargement: format!("{} data points", cost_points as u64),
                description: "Medium core utilization, low memory utilization",
                core_class: UtilClass::Medium,
                mem_class: UtilClass::Low,
                divisible: true,
            },
            d,
            k,
            n_func,
            points,
            centroids: initial_centroids.clone(),
            initial_centroids,
            last_sse: f64::INFINITY,
            cost_points,
            repeat,
            iters,
        }
    }

    /// Assigns points in `[lo, hi)` to nearest centroids, returning
    /// per-cluster coordinate sums, counts, and the range's SSE.
    fn assign_range(&self, lo: usize, hi: usize) -> (Vec<f64>, Vec<u64>, f64) {
        let (d, k) = (self.d, self.k);
        let mut sums = vec![0.0f64; k * d];
        let mut counts = vec![0u64; k];
        let mut sse = 0.0;
        for i in lo..hi {
            let p = &self.points[i * d..(i + 1) * d];
            let mut best = 0usize;
            let mut best_d2 = f64::INFINITY;
            for c in 0..k {
                let cen = &self.centroids[c * d..(c + 1) * d];
                let mut d2 = 0.0;
                for j in 0..d {
                    let diff = p[j] - cen[j];
                    d2 += diff * diff;
                }
                if d2 < best_d2 {
                    best_d2 = d2;
                    best = c;
                }
            }
            sse += best_d2;
            counts[best] += 1;
            for j in 0..d {
                sums[best * d + j] += p[j];
            }
        }
        (sums, counts, sse)
    }

    /// The SSE of the most recent iteration.
    pub fn last_sse(&self) -> f64 {
        self.last_sse
    }
}

/// RNG stream id for kmeans data generation ("kmeans" in ASCII).
const KMEANS_STREAM: u64 = 0x6b6d_6561_6e73;

impl Workload for KMeans {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, _iter: usize) -> Vec<PhaseCost> {
        let kd = self.k as f64 * self.d as f64;
        // Assignment dominates: 3 ops (sub, mul, add) per point-cluster-dim;
        // the centroid update adds one accumulate per point-dim.
        let gpu_ops = self.cost_points * (3.0 * kd + self.d as f64) * self.repeat;
        // Points stream from DRAM once per pass (f32 features + label) with
        // centroids cached in shared memory.
        let gpu_bytes = self.cost_points * (4.0 * self.d as f64 + 16.0) * self.repeat;
        let mut gpu = GpuPhase::new("assign+update", gpu_ops, gpu_bytes, 0.50, 0.60, 0.0);
        // Fitted host-gap fraction: per-pass launch + reduction readback put
        // kmeans in Table II's medium-core class.
        gpu.host_floor_s = host_floor_for_gap_fraction(&gpu, &geforce_8800_gtx(), 0.39);
        // The OpenMP side skips the redundant distance expansions the SIMT
        // kernel performs (factor 0.85) and sustains 60 % of nominal IPC.
        let cpu = CpuSlice {
            ops: gpu_ops * 0.85,
            bytes: self.cost_points * (8.0 * self.d as f64) * self.repeat * 0.02,
            eff: 0.60,
        };
        vec![PhaseCost { gpu, cpu }]
    }

    fn execute(&mut self, _iter: usize, cpu_share: f64) -> f64 {
        let n_cpu = ((self.n_func as f64) * cpu_share.clamp(0.0, 1.0)).round() as usize;
        let (mut sums, mut counts, sse_cpu) = self.assign_range(0, n_cpu);
        let (sums_gpu, counts_gpu, sse_gpu) = self.assign_range(n_cpu, self.n_func);
        for (s, g) in sums.iter_mut().zip(&sums_gpu) {
            *s += g;
        }
        for (c, g) in counts.iter_mut().zip(&counts_gpu) {
            *c += g;
        }
        for c in 0..self.k {
            if counts[c] > 0 {
                for j in 0..self.d {
                    self.centroids[c * self.d + j] = sums[c * self.d + j] / counts[c] as f64;
                }
            }
            // Empty clusters keep their previous centroid (Rodinia
            // behaviour).
        }
        self.last_sse = sse_cpu + sse_gpu;
        self.last_sse
    }

    fn digest(&self) -> f64 {
        self.centroids.iter().sum::<f64>() + if self.last_sse.is_finite() { self.last_sse } else { 0.0 }
    }

    fn reset(&mut self) {
        self.centroids.copy_from_slice(&self.initial_centroids);
        self.last_sse = f64::INFINITY;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{iteration_cpu_time_s, iteration_gpu_time_s, iteration_utilization};
    use crate::traits::check_phase;
    use greengpu_hw::calib::phenom_ii_x2;

    #[test]
    fn sse_is_non_increasing() {
        let mut km = KMeans::small(1);
        let mut prev = f64::INFINITY;
        for i in 0..km.iterations() {
            let sse = km.execute(i, 0.0);
            assert!(sse <= prev + 1e-9, "Lloyd SSE must not increase: {sse} > {prev}");
            prev = sse;
        }
    }

    #[test]
    fn split_is_invariant() {
        let shares = [0.0, 0.15, 0.30, 0.50, 0.85, 1.0];
        let mut digests = Vec::new();
        for &r in &shares {
            let mut km = KMeans::small(7);
            for i in 0..km.iterations() {
                km.execute(i, r);
            }
            digests.push(km.digest());
        }
        for w in digests.windows(2) {
            let rel = (w[0] - w[1]).abs() / w[0].abs().max(1.0);
            assert!(rel < 1e-9, "split changed result: {} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn reset_reproduces_run() {
        let mut km = KMeans::small(3);
        for i in 0..3 {
            km.execute(i, 0.25);
        }
        let d1 = km.digest();
        km.reset();
        for i in 0..3 {
            km.execute(i, 0.25);
        }
        assert_eq!(d1, km.digest());
    }

    #[test]
    fn phases_are_valid() {
        let km = KMeans::paper(1);
        for p in km.phases(0) {
            check_phase(&p);
        }
    }

    #[test]
    fn table2_utilization_class_holds() {
        let km = KMeans::paper(1);
        let spec = geforce_8800_gtx();
        let phases = km.phases(0);
        let (u_core, u_mem) = iteration_utilization(&phases, &spec, 576.0, 900.0);
        assert!(
            km.profile().core_class.contains(u_core),
            "core util {u_core} outside Medium band"
        );
        assert!(
            km.profile().mem_class.contains(u_mem),
            "mem util {u_mem} outside Low band"
        );
    }

    #[test]
    fn division_balance_point_matches_paper() {
        // §VII-B: the division algorithm converges to 20/80 CPU/GPU; the
        // time-balance point r* = tg/(tg+tc) must therefore sit near 0.2.
        let km = KMeans::paper(1);
        let phases = km.phases(0);
        let tg = iteration_gpu_time_s(&phases, &geforce_8800_gtx(), 576.0, 900.0);
        let tc = iteration_cpu_time_s(&phases, &phenom_ii_x2(), 2800.0);
        let r_star = tg / (tg + tc);
        assert!((0.15..0.23).contains(&r_star), "balance point {r_star}");
    }

    #[test]
    fn paper_iteration_is_tens_of_seconds() {
        // Iterations must dwarf the 3 s DVFS interval (paper §IV: division
        // interval ≥ 40× the scaling interval).
        let km = KMeans::paper(1);
        let tg = iteration_gpu_time_s(&km.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        assert!((30.0..90.0).contains(&tg), "iteration {tg} s");
    }

    #[test]
    fn clustering_actually_separates_anchors() {
        let mut km = KMeans::small(11);
        for i in 0..km.iterations() {
            km.execute(i, 0.0);
        }
        // After convergence SSE per point should be near the noise floor:
        // 7 signal dims of unit variance plus one noise dim of variance 9
        // (the kdd_cup-style uninformative dimension) → ≈ 16. Allow slack
        // for imperfect seeding.
        let sse_per_point = km.last_sse() / 256.0;
        assert!(sse_per_point < 24.0, "sse/pt {sse_per_point} — clustering failed");
    }

    #[test]
    fn empty_cluster_keeps_centroid() {
        // Degenerate instance: all points identical — most clusters go
        // empty and must retain their initial centroids without NaN.
        let mut km = KMeans::with_params(5, 16, 2, 4, 16.0, 1.0, 2);
        for p in km.points.iter_mut() {
            *p = 1.0;
        }
        km.centroids = vec![1.0, 1.0, 5.0, 5.0, 9.0, 9.0, 13.0, 13.0];
        km.execute(0, 0.0);
        assert!(km.centroids.iter().all(|c| c.is_finite()));
        // Cluster 0 captured everything; clusters 2-4 kept their centroids.
        assert_eq!(&km.centroids[2..4], &[5.0, 5.0]);
    }

    #[test]
    fn profile_is_divisible() {
        assert!(KMeans::small(1).profile().divisible);
    }
}
