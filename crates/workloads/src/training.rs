//! `training` — a phase-cycling ML-training loop (not in the paper's
//! Table II).
//!
//! Training steps cycle through forward / backward / optimizer phases
//! with sharply different compute/memory intensity (arXiv 2201.01684):
//! the forward pass is GEMM-bound, the backward pass moves roughly twice
//! the activation traffic per flop, and the optimizer is a short
//! bandwidth-light, host-chatty update. The suite's enlargement folds
//! many training steps into each division-quantum iteration, so
//! consecutive iterations carry a single phase's signature and the phase
//! rotates every `phase_period` iterations — slow enough for the 3 s
//! scaling interval (and the phase detector layered on it) to see each
//! regime, fast enough that a context-free policy keeps getting dragged
//! between fixed points.
//!
//! Per-iteration durations are jittered by a seeded PCG stream; the
//! jitter scales `ops` and `bytes` together, so it moves phase *length*
//! without moving the `(u_core, u_mem)` signature — recurring phases
//! look alike to the detector, as they do on real hardware.
//!
//! Functionally the workload runs real full-batch gradient descent on a
//! deterministic synthetic linear-regression problem; the digest is the
//! weight vector's state, so golden pins catch any numeric drift.

use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

/// PCG stream id for the duration-jitter draws.
const STREAM_JITTER: u64 = 0x7121;

/// Feature dimension of the synthetic regression problem.
const DIMS: usize = 8;

/// The three training phases, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stage {
    Forward,
    Backward,
    Optimizer,
}

/// Phase-cycling training-loop workload instance.
pub struct TrainingLoop {
    profile: WorkloadProfile,
    /// Synthetic dataset: `(x, y)` rows with `y = w_true · x + bias`.
    data: Vec<([f64; DIMS], f64)>,
    /// Model weights updated by [`Workload::execute`].
    weights: [f64; DIMS],
    /// Running sum of per-step losses (part of the digest).
    loss_acc: f64,
    /// Iterations per phase before rotating to the next.
    phase_period: usize,
    /// Per-iteration duration multipliers, pre-drawn so `phases` stays
    /// `&self` and deterministic.
    jitter: Vec<f64>,
    /// Scales all per-iteration op/byte costs (1.0 = paper preset).
    cost_scale: f64,
    iters: usize,
}

impl TrainingLoop {
    /// Paper-scale preset: iterations several 3 s control intervals
    /// long, phases rotating every 2 iterations.
    pub fn paper(seed: u64) -> Self {
        TrainingLoop::with_params(256, 12, 2, 1.0, seed)
    }

    /// Small preset for fast tests.
    pub fn small(seed: u64) -> Self {
        TrainingLoop::with_params(64, 6, 1, 0.25, seed)
    }

    /// Fully parameterized constructor. `phase_period` is clamped to at
    /// least 1; `cost_scale` multiplies every phase's ops/bytes (and so
    /// its duration) without touching utilization signatures.
    pub fn with_params(n_samples: usize, iters: usize, phase_period: usize, cost_scale: f64, seed: u64) -> Self {
        let mut rng = Pcg32::new(seed, STREAM_JITTER);
        // Deterministic synthetic regression task: ground-truth weights
        // are fixed, features drawn from the seeded stream.
        let mut w_true = [0.0; DIMS];
        for (d, w) in w_true.iter_mut().enumerate() {
            *w = (d as f64 + 1.0) * 0.25 - 1.0;
        }
        let data: Vec<([f64; DIMS], f64)> = (0..n_samples.max(1))
            .map(|_| {
                let mut x = [0.0; DIMS];
                for v in x.iter_mut() {
                    *v = rng.next_f64() * 2.0 - 1.0;
                }
                let y = x.iter().zip(w_true.iter()).map(|(a, b)| a * b).sum::<f64>() + 0.5;
                (x, y)
            })
            .collect();
        // Duration jitter in [0.9, 1.1]: phase lengths vary run to run
        // (per the seeded stream) while signatures stay put.
        let jitter: Vec<f64> = (0..iters).map(|_| 0.9 + 0.2 * rng.next_f64()).collect();
        TrainingLoop {
            profile: WorkloadProfile {
                name: "training",
                enlargement: format!("{iters} iterations; phase period {phase_period}"),
                description: "Training phases cycle compute/memory/host-bound",
                core_class: UtilClass::Fluctuating,
                mem_class: UtilClass::Fluctuating,
                divisible: false,
            },
            data,
            weights: [0.0; DIMS],
            loss_acc: 0.0,
            phase_period: phase_period.max(1),
            jitter,
            cost_scale,
            iters,
        }
    }

    /// Iterations per phase before rotating.
    pub fn phase_period(&self) -> usize {
        self.phase_period
    }

    /// Which training phase iteration `iter` runs.
    fn stage(&self, iter: usize) -> Stage {
        match (iter / self.phase_period) % 3 {
            0 => Stage::Forward,
            1 => Stage::Backward,
            _ => Stage::Optimizer,
        }
    }

    /// One full-batch gradient-descent step on the MSE objective.
    fn gd_step(&mut self) -> f64 {
        let n = self.data.len() as f64;
        let mut grad = [0.0; DIMS];
        let mut loss = 0.0;
        for (x, y) in &self.data {
            let pred: f64 = x.iter().zip(self.weights.iter()).map(|(a, b)| a * b).sum();
            let err = pred - y;
            loss += err * err;
            for (g, v) in grad.iter_mut().zip(x.iter()) {
                *g += 2.0 * err * v;
            }
        }
        const LR: f64 = 0.05;
        for (w, g) in self.weights.iter_mut().zip(grad.iter()) {
            *w -= LR * g / n;
        }
        loss / n
    }
}

impl Workload for TrainingLoop {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, iter: usize) -> Vec<PhaseCost> {
        let spec = geforce_8800_gtx();
        let j = self.cost_scale * self.jitter.get(iter).copied().unwrap_or(1.0);
        // Costs are sized against the 8800 GTX rates (±eff): at peak
        // clocks an unjittered forward/backward iteration walls ~7 s —
        // two-plus control intervals — and the optimizer ~3 s.
        let (phase, cpu) = match self.stage(iter) {
            Stage::Forward => {
                // GEMM-bound: arithmetic intensity ~5 ops/B, small host
                // gap. Signature ≈ (0.83, 0.34) at peak clocks.
                let ops = 5.0e11 * j;
                let mut p = GpuPhase::new("forward", ops, ops / 5.0, 0.60, 0.50, 0.0);
                p.host_floor_s = host_floor_for_gap_fraction(&p, &spec, 0.12);
                let cpu = CpuSlice {
                    ops: ops * 0.6,
                    bytes: ops / 25.0,
                    eff: 0.70,
                };
                (p, cpu)
            }
            Stage::Backward => {
                // Activation-gradient traffic dominates: intensity ~0.6
                // ops/B. Signature ≈ (0.24, 0.81) at peak clocks.
                let bytes = 2.5e11 * j;
                let mut p = GpuPhase::new("backward", bytes * 0.6, bytes, 0.60, 0.50, 0.0);
                p.host_floor_s = host_floor_for_gap_fraction(&p, &spec, 0.15);
                let cpu = CpuSlice {
                    ops: bytes * 0.5,
                    bytes: bytes / 6.0,
                    eff: 0.70,
                };
                (p, cpu)
            }
            Stage::Optimizer => {
                // Element-wise weight update: little work on either
                // domain, host-side step/logging gap dominates.
                // Signature ≈ (0.20, 0.42) at peak clocks.
                let ops = 6.0e10 * j;
                let mut p = GpuPhase::new("optimizer", ops, ops, 0.60, 0.50, 0.0);
                p.host_floor_s = host_floor_for_gap_fraction(&p, &spec, 0.55);
                let cpu = CpuSlice {
                    ops: ops * 0.5,
                    bytes: ops / 4.0,
                    eff: 0.70,
                };
                (p, cpu)
            }
        };
        vec![PhaseCost { gpu: phase, cpu }]
    }

    fn execute(&mut self, _iter: usize, _cpu_share: f64) -> f64 {
        // Not divisible: the whole folded training step runs GPU-side.
        let loss = self.gd_step();
        self.loss_acc += loss;
        loss
    }

    fn digest(&self) -> f64 {
        self.weights.iter().sum::<f64>() + self.loss_acc
    }

    fn reset(&mut self) {
        self.weights = [0.0; DIMS];
        self.loss_acc = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::iteration_utilization;
    use crate::traits::check_phase;

    #[test]
    fn phases_are_valid() {
        let t = TrainingLoop::paper(1);
        for iter in 0..t.iterations() {
            for p in t.phases(iter) {
                check_phase(&p);
            }
        }
    }

    #[test]
    fn the_three_signatures_are_distinct() {
        let t = TrainingLoop::with_params(64, 6, 1, 1.0, 3);
        let spec = geforce_8800_gtx();
        let sig: Vec<(f64, f64)> = (0..3)
            .map(|i| iteration_utilization(&t.phases(i), &spec, 576.0, 900.0))
            .collect();
        for a in 0..3 {
            for b in (a + 1)..3 {
                let d = (sig[a].0 - sig[b].0).abs() + (sig[a].1 - sig[b].1).abs();
                assert!(d > 0.3, "stages {a}/{b} too close: {:?} vs {:?}", sig[a], sig[b]);
            }
        }
        // Forward is compute-leaning, backward memory-leaning.
        assert!(sig[0].0 > sig[0].1, "forward must be compute-heavy: {:?}", sig[0]);
        assert!(sig[1].1 > sig[1].0, "backward must be memory-heavy: {:?}", sig[1]);
    }

    #[test]
    fn jitter_moves_duration_not_signature() {
        let t = TrainingLoop::paper(5);
        let spec = geforce_8800_gtx();
        // Iterations 0 and 1 are both forward (period 2) with different
        // jitter draws: same utilization, different wall time.
        let u0 = iteration_utilization(&t.phases(0), &spec, 576.0, 900.0);
        let u1 = iteration_utilization(&t.phases(1), &spec, 576.0, 900.0);
        assert!((u0.0 - u1.0).abs() < 1e-9 && (u0.1 - u1.1).abs() < 1e-9);
        let w = |i: usize| {
            let p = &t.phases(i)[0].gpu;
            crate::model::phase_gpu_timing(p, &spec, 576.0, 900.0).wall_s
        };
        assert!((w(0) - w(1)).abs() > 1e-6, "jitter must vary duration");
    }

    #[test]
    fn stage_rotation_follows_the_period() {
        let t = TrainingLoop::with_params(64, 12, 2, 1.0, 1);
        let labels: Vec<&str> = (0..12).map(|i| t.phases(i)[0].gpu.label).collect();
        assert_eq!(
            labels,
            [
                "forward",
                "forward",
                "backward",
                "backward",
                "optimizer",
                "optimizer",
                "forward",
                "forward",
                "backward",
                "backward",
                "optimizer",
                "optimizer"
            ]
        );
    }

    #[test]
    fn execution_is_deterministic_and_learns() {
        let run = |seed| {
            let mut t = TrainingLoop::small(seed);
            let mut losses = Vec::new();
            for i in 0..t.iterations() {
                losses.push(t.execute(i, 0.0));
            }
            (losses, t.digest())
        };
        let (l_a, d_a) = run(7);
        let (l_b, d_b) = run(7);
        assert_eq!(d_a, d_b, "same seed must be bit-identical");
        assert_eq!(l_a, l_b);
        assert!(
            l_a.last().unwrap() < l_a.first().unwrap(),
            "gradient descent must reduce the loss: {l_a:?}"
        );
        let (_, d_c) = run(8);
        assert_ne!(d_a, d_c, "different seed, different data, different digest");
    }

    #[test]
    fn golden_trace_pin() {
        // Pins the small-preset jitter stream and functional digest.
        // Any change to the PCG draws, the dataset synthesis, or the
        // gradient step shows up here first.
        let mut t = TrainingLoop::small(20120910);
        for i in 0..t.iterations() {
            t.execute(i, 0.0);
        }
        assert_eq!(format!("{:.9}", t.digest()), "7.575774509");
        let jit: Vec<String> = t.jitter.iter().map(|j| format!("{j:.6}")).collect();
        assert_eq!(
            jit,
            ["1.067013", "1.006170", "1.091433", "1.064211", "0.918407", "0.991038"],
            "jitter stream drifted"
        );
    }

    #[test]
    fn reset_clears_training_state() {
        let mut t = TrainingLoop::small(1);
        t.execute(0, 0.0);
        assert_ne!(t.digest(), 0.0);
        t.reset();
        // Untrained model on the synthetic data: digest is exactly the
        // zero weight vector plus an empty loss accumulator.
        assert_eq!(t.digest(), 0.0);
    }
}
