//! `streamcluster` (SC) — online clustering (Rodinia / PARSEC port).
//!
//! The paper's *memory-bounded, phase-fluctuating* exemplar: Table II lists
//! 65 536 points with 512 dimensions and "utilizations highly fluctuate";
//! Fig. 1 uses SC as the memory-bound case (memory throttling hurts, core
//! throttling down to ~410 MHz is nearly free); Fig. 5 shows the WMA scaler
//! converging SC's memory clock to 820 MHz while tracking its utilization
//! swings.
//!
//! An iteration evaluates one candidate center: a distance pass (or two)
//! over all points followed by a gain-evaluation pass. Iterations alternate
//! between patterns, producing the utilization fluctuation. Division splits
//! the point set; gain partial sums are merged.

use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

/// Cost of opening a new center (facility-location opening cost).
const OPEN_COST: f64 = 50.0;

/// Streamcluster workload instance.
pub struct StreamCluster {
    profile: WorkloadProfile,
    n_func: usize,
    d: usize,
    points: Vec<f64>,
    weight: Vec<f64>,
    /// Current distance of each point to its assigned center.
    dist: Vec<f64>,
    /// Indices of open centers.
    centers: Vec<usize>,
    cost_points: f64,
    cost_dims: f64,
    repeat: f64,
    iters: usize,
}

impl StreamCluster {
    /// Paper preset: 65 536 points × 512 dims charged to costs (functional
    /// state is 2 048 × 64).
    pub fn paper(seed: u64) -> Self {
        StreamCluster::with_params(seed, 2048, 64, 65_536.0, 512.0, 430.0, 14)
    }

    /// Small preset for fast tests.
    pub fn small(seed: u64) -> Self {
        StreamCluster::with_params(seed, 256, 16, 65_536.0, 512.0, 300.0, 6)
    }

    /// Fully parameterized constructor.
    pub fn with_params(
        seed: u64,
        n_func: usize,
        d: usize,
        cost_points: f64,
        cost_dims: f64,
        repeat: f64,
        iters: usize,
    ) -> Self {
        assert!(n_func >= 8);
        let mut rng = Pcg32::new(seed, 0x7363_6c75_7374); // "sclust"
        let mut points = vec![0.0f64; n_func * d];
        for p in points.iter_mut() {
            *p = rng.uniform(0.0, 10.0);
        }
        let weight: Vec<f64> = (0..n_func).map(|_| rng.uniform(0.5, 2.0)).collect();
        let mut sc = StreamCluster {
            profile: WorkloadProfile {
                name: "streamcluster",
                enlargement: format!("{} points with {} dimensions", cost_points as u64, cost_dims as u64),
                description: "Utilizations highly fluctuate",
                core_class: UtilClass::Fluctuating,
                mem_class: UtilClass::Fluctuating,
                divisible: true,
            },
            n_func,
            d,
            points,
            weight,
            dist: Vec::new(),
            centers: vec![0],
            cost_points,
            cost_dims,
            repeat,
            iters,
        };
        sc.recompute_assignments();
        sc
    }

    fn d2(&self, a: usize, b: usize) -> f64 {
        let pa = &self.points[a * self.d..(a + 1) * self.d];
        let pb = &self.points[b * self.d..(b + 1) * self.d];
        pa.iter().zip(pb).map(|(x, y)| (x - y) * (x - y)).sum()
    }

    fn recompute_assignments(&mut self) {
        self.dist = (0..self.n_func)
            .map(|p| {
                self.centers
                    .iter()
                    .map(|&c| self.d2(p, c))
                    .fold(f64::INFINITY, f64::min)
            })
            .collect();
    }

    /// Weighted gain of opening `candidate`, accumulated over points
    /// `[lo, hi)`.
    fn gain_range(&self, candidate: usize, lo: usize, hi: usize) -> f64 {
        (lo..hi)
            .map(|p| {
                let new_d = self.d2(p, candidate);
                self.weight[p] * (self.dist[p] - new_d).max(0.0)
            })
            .sum()
    }

    /// Total weighted clustering cost (sum of weighted distances).
    pub fn clustering_cost(&self) -> f64 {
        self.dist.iter().zip(&self.weight).map(|(d, w)| d * w).sum()
    }

    /// Number of currently open centers.
    pub fn open_centers(&self) -> usize {
        self.centers.len()
    }
}

impl Workload for StreamCluster {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, iter: usize) -> Vec<PhaseCost> {
        let spec = geforce_8800_gtx();
        let nd = self.cost_points * self.cost_dims * self.repeat;
        // Distance pass: 3 flops per point-dim, streaming reads of the full
        // point set — heavily bandwidth-bound (Fig. 1's memory-bound case).
        let mut dist_gpu = GpuPhase::new("distance", nd * 3.0, nd * 8.0, 0.50, 0.55, 0.0);
        dist_gpu.host_floor_s = host_floor_for_gap_fraction(&dist_gpu, &spec, 0.30);
        let dist = PhaseCost {
            gpu: dist_gpu,
            cpu: CpuSlice {
                ops: nd * 3.0,
                bytes: nd * 2.0,
                eff: 0.70,
            },
        };
        // Gain pass: more arithmetic per byte (max/accumulate chains) but
        // still below the machine balance point, so core throttling to
        // ~410 MHz stays nearly free (Fig. 1d).
        let mut gain_gpu = GpuPhase::new("gain", nd * 6.0, nd * 3.87, 0.50, 0.55, 0.0);
        gain_gpu.host_floor_s = host_floor_for_gap_fraction(&gain_gpu, &spec, 0.25);
        let gain = PhaseCost {
            gpu: gain_gpu,
            cpu: CpuSlice {
                ops: nd * 6.0,
                bytes: nd * 1.6,
                eff: 0.70,
            },
        };
        // Phase-pattern fluctuation: alternating iteration shapes.
        if iter.is_multiple_of(2) {
            vec![dist, dist, gain]
        } else {
            vec![dist, gain]
        }
    }

    fn execute(&mut self, iter: usize, cpu_share: f64) -> f64 {
        let candidate = (iter * 97 + 13) % self.n_func;
        let split = ((self.n_func as f64) * cpu_share.clamp(0.0, 1.0)).round() as usize;
        // CPU and GPU sides accumulate partial gains, merged here.
        let gain = self.gain_range(candidate, 0, split) + self.gain_range(candidate, split, self.n_func);
        if gain > OPEN_COST && !self.centers.contains(&candidate) {
            self.centers.push(candidate);
            self.recompute_assignments();
        }
        self.clustering_cost()
    }

    fn digest(&self) -> f64 {
        self.clustering_cost() + self.centers.len() as f64
    }

    fn reset(&mut self) {
        self.centers = vec![0];
        self.recompute_assignments();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{iteration_utilization, phase_gpu_timing};
    use crate::traits::check_phase;

    #[test]
    fn split_is_invariant() {
        let mut digests = Vec::new();
        for &r in &[0.0, 0.2, 0.5, 0.8, 1.0] {
            let mut sc = StreamCluster::small(2);
            for i in 0..sc.iterations() {
                sc.execute(i, r);
            }
            digests.push(sc.digest());
        }
        for w in digests.windows(2) {
            assert!((w[0] - w[1]).abs() / w[0].abs() < 1e-12, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn clustering_cost_never_increases() {
        // Opening a center can only reduce every point's distance.
        let mut sc = StreamCluster::small(3);
        let mut prev = sc.clustering_cost();
        for i in 0..sc.iterations() {
            let cost = sc.execute(i, 0.0);
            assert!(cost <= prev + 1e-9, "cost rose: {prev} -> {cost}");
            prev = cost;
        }
    }

    #[test]
    fn some_centers_open_on_random_data() {
        let mut sc = StreamCluster::small(4);
        for i in 0..sc.iterations() {
            sc.execute(i, 0.0);
        }
        assert!(sc.open_centers() > 1, "no center ever opened");
    }

    #[test]
    fn reset_reproduces_run() {
        let mut sc = StreamCluster::small(5);
        for i in 0..3 {
            sc.execute(i, 0.4);
        }
        let d = sc.digest();
        sc.reset();
        for i in 0..3 {
            sc.execute(i, 0.4);
        }
        assert_eq!(d, sc.digest());
    }

    #[test]
    fn phases_are_valid_and_fluctuate() {
        let sc = StreamCluster::paper(1);
        let p0 = sc.phases(0);
        let p1 = sc.phases(1);
        for p in p0.iter().chain(&p1) {
            check_phase(p);
        }
        assert_ne!(p0.len(), p1.len(), "iteration shapes should alternate");
    }

    #[test]
    fn utilizations_fluctuate_across_iterations() {
        let sc = StreamCluster::paper(1);
        let spec = geforce_8800_gtx();
        let (c0, _) = iteration_utilization(&sc.phases(0), &spec, 576.0, 900.0);
        let (c1, _) = iteration_utilization(&sc.phases(1), &spec, 576.0, 900.0);
        assert!(
            (c0 - c1).abs() > 0.02,
            "core util should differ between patterns: {c0} vs {c1}"
        );
    }

    #[test]
    fn memory_utilization_is_high_on_average() {
        // Fig. 5b: the WMA scaler settles SC's memory near 820 MHz — its
        // windowed memory utilization must sit near umean(level 4) = 0.8.
        let sc = StreamCluster::paper(1);
        let (_, u_mem) = iteration_utilization(&sc.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        // The WMA fixed point: u_mem must sit between the level-3/4
        // decision boundary (~0.60) and low enough that the post-throttle
        // utilization rise (×900/820) stays below the level-4/5 boundary
        // (~0.80) — that is what pins the memory clock at 820 MHz.
        assert!((0.60..0.73).contains(&u_mem), "mem util {u_mem}");
    }

    #[test]
    fn fig1_core_throttle_to_midrange_is_nearly_free() {
        // Fig. 1d: SC at ~410 MHz core loses little time; at the lowest
        // core level it starts to hurt.
        let sc = StreamCluster::paper(1);
        let spec = geforce_8800_gtx();
        let time_at = |core: f64| -> f64 {
            sc.phases(0)
                .iter()
                .map(|p| phase_gpu_timing(&p.gpu, &spec, core, 900.0).total_s())
                .sum()
        };
        let t_peak = time_at(576.0);
        let t_410 = time_at(408.0);
        let t_296 = time_at(296.0);
        assert!(t_410 / t_peak < 1.06, "410 MHz stretch {}", t_410 / t_peak);
        assert!(t_296 / t_peak > 1.05, "296 MHz stretch {}", t_296 / t_peak);
    }

    #[test]
    fn fig1_memory_throttle_hurts() {
        // Fig. 1a/1b: SC is memory-bound — memory at 500 MHz stretches time
        // substantially.
        let sc = StreamCluster::paper(1);
        let spec = geforce_8800_gtx();
        let t_peak: f64 = sc
            .phases(0)
            .iter()
            .map(|p| phase_gpu_timing(&p.gpu, &spec, 576.0, 900.0).total_s())
            .sum();
        let t_slow: f64 = sc
            .phases(0)
            .iter()
            .map(|p| phase_gpu_timing(&p.gpu, &spec, 576.0, 500.0).total_s())
            .sum();
        assert!(t_slow / t_peak > 1.15, "SC memory-throttle stretch {}", t_slow / t_peak);
    }
}
