//! # greengpu-workloads — the paper's benchmark suite, re-implemented
//!
//! GreenGPU is evaluated on nine workloads from Rodinia and the CUDA SDK
//! (paper Table II): `bfs`, `lud`, `nbody`, `PF` (pathfinder), `QG`
//! (quasirandom generator), `srad_v2`, `hotspot`, `kmeans`, and
//! `streamcluster`. This crate re-implements each of them in Rust:
//!
//! * **Functionally** — the real algorithm runs and produces real results,
//!   and every divisible workload supports the CPU/GPU *split-and-merge*
//!   execution the paper builds with pthreads + CUDA (§VI): a `cpu_share`
//!   fraction of each iteration's parallel work is computed by the "CPU
//!   side", the rest by the "GPU side", and the partial results are merged.
//!   Tests assert the merged result is split-invariant.
//! * **As a cost model** — each iteration reports its hardware demands
//!   ([`PhaseCost`]: operations, bytes, achieved-efficiency factors, host
//!   gaps) from which the simulated testbed derives execution time, the
//!   utilization signatures of Table II, and power. The efficiency/gap
//!   constants are *calibrated* so each workload lands in its Table II
//!   utilization class and the division-tier behaviour matches §VII-B
//!   (kmeans optimum near 15/85 CPU/GPU, hotspot near 50/50); DESIGN.md
//!   documents this substitution.
//!
//! [`registry::all_workloads`] builds the full Table II suite with the
//! paper's enlargement presets; each module also offers small presets for
//! fast tests. [`datasets`] provides realistic synthetic input generators
//! (clustered features, R-MAT graphs, floorplan power maps, speckled
//! images) standing in for the benchmark datasets the paper uses.

#![forbid(unsafe_code)]

pub mod bfs;
pub mod datasets;
pub mod hotspot;
pub mod kmeans;
pub mod lud;
pub mod model;
pub mod nbody;
pub mod pathfinder;
pub mod quasirandom;
pub mod registry;
pub mod srad;
pub mod streamcluster;
pub mod training;
pub mod traits;

pub use model::{iteration_cpu_time_s, iteration_gpu_time_s, phase_cpu_time_s, phase_gpu_timing, PhaseTiming};
pub use traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
