//! `bfs` — level-synchronous breadth-first search (Rodinia).
//!
//! Table II: "65536 iterations" enlargement, high core *and* memory
//! utilization — with both domains saturated the paper observes the
//! smallest frequency-scaling savings (Fig. 6 discussion), because
//! throttling either side immediately stretches execution.
//!
//! BFS's frontier expansion is not chunk-divisible without shared frontier
//! state, so the workload is marked non-divisible (the paper divides only
//! iteration-structured data-parallel workloads); each of our iterations is
//! a batch of repeated traversals from rotating sources.

use crate::datasets::{edges_to_csr, rmat_edges};
use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

/// BFS workload instance over a synthetic undirected graph.
pub struct Bfs {
    profile: WorkloadProfile,
    n_func: usize,
    /// CSR adjacency: `adj[offsets[v]..offsets[v+1]]` are v's neighbors.
    offsets: Vec<u32>,
    adj: Vec<u32>,
    /// Sum of distances from all traversals so far.
    acc: f64,
    cost_nodes: f64,
    avg_degree: f64,
    repeat: f64,
    iters: usize,
    last_dist: Vec<u32>,
}

impl Bfs {
    /// Paper preset: 1 M nodes / 16 M edges charged to costs, functional
    /// graph 16 384 nodes; the Table II "65536 iterations" enlargement is
    /// spread as 16 iterations × 4 096 repeated traversals.
    pub fn paper(seed: u64) -> Self {
        Bfs::with_params(seed, 16_384, 8, 1_048_576.0, 16.0, 500.0, 16)
    }

    /// Small preset for fast tests.
    pub fn small(seed: u64) -> Self {
        Bfs::with_params(seed, 512, 4, 512.0, 8.0, 3.0e6, 4)
    }

    /// Fully parameterized constructor. `degree` is the functional graph's
    /// half-degree (edges are mirrored); `cost_degree` the cost model's.
    pub fn with_params(
        seed: u64,
        n_func: usize,
        degree: usize,
        cost_nodes: f64,
        cost_degree: f64,
        repeat: f64,
        iters: usize,
    ) -> Self {
        assert!(n_func >= 2 && degree >= 1);
        let mut rng = Pcg32::new(seed, 0x626673); // "bfs"
                                                  // R-MAT edges give the power-law degree structure real BFS inputs
                                                  // have; a ring (added by the CSR builder) guarantees connectivity.
        let scale = (usize::BITS - (n_func - 1).leading_zeros()).max(1);
        let pairs = rmat_edges(&mut rng, scale, degree);
        let (offsets, adj) = edges_to_csr(n_func, &pairs);
        Bfs {
            profile: WorkloadProfile {
                name: "bfs",
                enlargement: "65536 iterations".to_string(),
                description: "High core and memory utilization",
                core_class: UtilClass::High,
                mem_class: UtilClass::High,
                divisible: false,
            },
            n_func,
            offsets,
            adj,
            acc: 0.0,
            cost_nodes,
            avg_degree: cost_degree,
            repeat,
            iters,
            last_dist: Vec::new(),
        }
    }

    /// Level-synchronous BFS from `source`; returns the distance array
    /// (`u32::MAX` marks unreachable — impossible here thanks to the ring).
    fn traverse(&self, source: usize) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.n_func];
        dist[source] = 0;
        let mut frontier = vec![source as u32];
        let mut level = 0u32;
        while !frontier.is_empty() {
            level += 1;
            let mut next = Vec::new();
            for &v in &frontier {
                let (lo, hi) = (self.offsets[v as usize] as usize, self.offsets[v as usize + 1] as usize);
                for &u in &self.adj[lo..hi] {
                    if dist[u as usize] == u32::MAX {
                        dist[u as usize] = level;
                        next.push(u);
                    }
                }
            }
            frontier = next;
        }
        dist
    }

    /// The distance array of the most recent traversal (for tests).
    pub fn last_distances(&self) -> &[u32] {
        &self.last_dist
    }

    /// CSR view of the graph (for tests).
    pub fn graph(&self) -> (&[u32], &[u32]) {
        (&self.offsets, &self.adj)
    }
}

impl Workload for Bfs {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, _iter: usize) -> Vec<PhaseCost> {
        let edges = self.cost_nodes * self.avg_degree;
        // ~29 ops per edge relaxation (load, compare, CAS-style update,
        // frontier bookkeeping); irregular 16 B of traffic per edge. The
        // divergent access pattern keeps the memory controller busy above
        // its achieved-bandwidth fraction (mem_busy_factor).
        let gpu_ops = edges * 29.3 * self.repeat;
        let gpu_bytes = edges * 16.0 * self.repeat;
        let mut gpu = GpuPhase::new("frontier-sweep", gpu_ops, gpu_bytes, 0.25, 0.35, 0.0).with_mem_busy_factor(1.23);
        gpu.host_floor_s = host_floor_for_gap_fraction(&gpu, &geforce_8800_gtx(), 0.05);
        let cpu = CpuSlice {
            ops: gpu_ops * 0.6,
            bytes: edges * 12.0 * self.repeat,
            eff: 0.45,
        };
        vec![PhaseCost { gpu, cpu }]
    }

    fn execute(&mut self, iter: usize, _cpu_share: f64) -> f64 {
        let source = (iter * 131) % self.n_func;
        let dist = self.traverse(source);
        let sum: f64 = dist.iter().map(|&d| f64::from(d)).sum();
        self.acc += sum;
        self.last_dist = dist;
        sum
    }

    fn digest(&self) -> f64 {
        self.acc
    }

    fn reset(&mut self) {
        self.acc = 0.0;
        self.last_dist.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{iteration_utilization, phase_gpu_timing};
    use crate::traits::check_phase;

    #[test]
    fn all_nodes_reachable_via_ring() {
        let mut b = Bfs::small(1);
        b.execute(0, 0.0);
        assert!(b.last_distances().iter().all(|&d| d != u32::MAX));
    }

    #[test]
    fn distances_satisfy_edge_triangle_property() {
        // For every undirected edge (v,u): |dist(v) - dist(u)| ≤ 1.
        let mut b = Bfs::small(2);
        b.execute(0, 0.0);
        let d = b.last_distances().to_vec();
        let (offsets, adj) = b.graph();
        for v in 0..d.len() {
            for &u in &adj[offsets[v] as usize..offsets[v + 1] as usize] {
                let (dv, du) = (i64::from(d[v]), i64::from(d[u as usize]));
                assert!((dv - du).abs() <= 1, "edge ({v},{u}) violates BFS levels");
            }
        }
    }

    #[test]
    fn source_has_distance_zero() {
        let mut b = Bfs::small(3);
        b.execute(0, 0.0);
        assert_eq!(b.last_distances()[0], 0);
    }

    #[test]
    fn traversal_is_deterministic() {
        let mut b1 = Bfs::small(4);
        let mut b2 = Bfs::small(4);
        assert_eq!(b1.execute(0, 0.0), b2.execute(0, 0.0));
        assert_eq!(b1.execute(1, 0.5), b2.execute(1, 0.0), "cpu_share must not affect bfs");
    }

    #[test]
    fn reset_clears_accumulator() {
        let mut b = Bfs::small(5);
        b.execute(0, 0.0);
        assert!(b.digest() > 0.0);
        b.reset();
        assert_eq!(b.digest(), 0.0);
    }

    #[test]
    fn phases_are_valid_and_not_divisible() {
        let b = Bfs::paper(1);
        for p in b.phases(0) {
            check_phase(&p);
        }
        assert!(!b.profile().divisible);
    }

    #[test]
    fn table2_both_utilizations_high() {
        let b = Bfs::paper(1);
        let (u_core, u_mem) = iteration_utilization(&b.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        assert!(u_core > 0.70, "core util {u_core}");
        assert!(u_mem > 0.70, "mem util {u_mem}");
    }

    #[test]
    fn throttling_either_domain_stretches_time() {
        // The Fig. 6 discussion: with both domains busy, bfs cannot be
        // throttled for free — this is why its savings are smallest.
        let b = Bfs::paper(1);
        let spec = geforce_8800_gtx();
        let p = b.phases(0)[0].gpu;
        let base = phase_gpu_timing(&p, &spec, 576.0, 900.0).total_s();
        let slow_core = phase_gpu_timing(&p, &spec, 464.0, 900.0).total_s();
        let slow_mem = phase_gpu_timing(&p, &spec, 576.0, 500.0).total_s();
        assert!(slow_core / base > 1.05, "core throttle stretch {}", slow_core / base);
        assert!(slow_mem / base > 1.05, "mem throttle stretch {}", slow_mem / base);
    }
}
