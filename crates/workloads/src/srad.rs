//! `srad_v2` — speckle-reducing anisotropic diffusion (Rodinia).
//!
//! Table II: 2048 columns × 2048 rows, *high* core / *medium* memory
//! utilization. SRAD alternates a diffusion-coefficient pass and an update
//! pass over the image every iteration; both are arithmetic-dense stencils
//! with moderate streaming traffic.
//!
//! Rows are independent within each pass (the passes are separated by a
//! barrier), so srad is divisible by row bands like hotspot.

use crate::datasets::speckled_image;
use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

const LAMBDA: f64 = 0.5;

/// SRAD workload instance.
pub struct Srad {
    profile: WorkloadProfile,
    rows: usize,
    cols: usize,
    img: Vec<f64>,
    coeff: Vec<f64>,
    initial_img: Vec<f64>,
    cost_cells: f64,
    repeat: f64,
    iters: usize,
}

impl Srad {
    /// Paper preset: 2048×2048 charged to costs; functional image 96×96.
    pub fn paper(seed: u64) -> Self {
        Srad::with_params(seed, 96, 96, 2048.0 * 2048.0, 1000.0, 24)
    }

    /// Small preset for fast tests.
    pub fn small(seed: u64) -> Self {
        Srad::with_params(seed, 24, 24, 576.0, 2.8e7, 6)
    }

    /// Fully parameterized constructor.
    pub fn with_params(seed: u64, rows: usize, cols: usize, cost_cells: f64, repeat: f64, iters: usize) -> Self {
        assert!(rows >= 4 && cols >= 4);
        let mut rng = Pcg32::new(seed, 0x73726164); // "srad"
                                                    // Multiplicative speckle over a smooth reflectivity field — the
                                                    // noise model SRAD is designed to remove.
        let img = speckled_image(&mut rng, rows, cols, 0.22);
        Srad {
            profile: WorkloadProfile {
                name: "srad_v2",
                enlargement: "2048 columns by 2048 rows".to_string(),
                description: "High core utilization, medium memory utilization",
                core_class: UtilClass::High,
                mem_class: UtilClass::Medium,
                divisible: true,
            },
            rows,
            cols,
            coeff: vec![0.0; rows * cols],
            initial_img: img.clone(),
            img,
            cost_cells,
            repeat,
            iters,
        }
    }

    /// Image variance / mean² — the speckle statistic SRAD reduces.
    pub fn speckle_q0_sqr(&self) -> f64 {
        let n = self.img.len() as f64;
        let mean = self.img.iter().sum::<f64>() / n;
        let var = self.img.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        var / (mean * mean)
    }

    /// Pass 1 over rows `[lo, hi)`: diffusion coefficients from local
    /// gradients (Rodinia srad_v2 kernel 1).
    fn coeff_rows(&mut self, lo: usize, hi: usize, q0_sqr: f64) {
        let (r, c) = (self.rows, self.cols);
        for i in lo..hi {
            for j in 0..c {
                let idx = i * c + j;
                let jc = self.img[idx];
                let jn = self.img[if i > 0 { idx - c } else { idx }];
                let js = self.img[if i + 1 < r { idx + c } else { idx }];
                let jw = self.img[if j > 0 { idx - 1 } else { idx }];
                let je = self.img[if j + 1 < c { idx + 1 } else { idx }];
                let dn = jn - jc;
                let ds = js - jc;
                let dw = jw - jc;
                let de = je - jc;
                let g2 = (dn * dn + ds * ds + dw * dw + de * de) / (jc * jc);
                let l = (dn + ds + dw + de) / jc;
                let num = 0.5 * g2 - (1.0 / 16.0) * l * l;
                let den = 1.0 + 0.25 * l;
                let q_sqr = num / (den * den);
                let cden = 1.0 + (q_sqr - q0_sqr) / (q0_sqr * (1.0 + q0_sqr));
                self.coeff[idx] = (1.0 / cden).clamp(0.0, 1.0);
            }
        }
    }

    /// Pass 2 over rows `[lo, hi)`: divergence update (kernel 2).
    fn update_rows(&mut self, lo: usize, hi: usize) {
        let (r, c) = (self.rows, self.cols);
        for i in lo..hi {
            for j in 0..c {
                let idx = i * c + j;
                let cs = self.coeff[if i + 1 < r { idx + c } else { idx }];
                let ce = self.coeff[if j + 1 < c { idx + 1 } else { idx }];
                let jc = self.img[idx];
                let js = self.img[if i + 1 < r { idx + c } else { idx }];
                let je = self.img[if j + 1 < c { idx + 1 } else { idx }];
                let jn = self.img[if i > 0 { idx - c } else { idx }];
                let jw = self.img[if j > 0 { idx - 1 } else { idx }];
                // Rodinia srad_v2 uses the center coefficient for the
                // north and west fluxes.
                let cn = self.coeff[idx];
                let cw = self.coeff[idx];
                let d = cs * (js - jc) + cn * (jn - jc) + ce * (je - jc) + cw * (jw - jc);
                self.img[idx] = jc + 0.25 * LAMBDA * d;
            }
        }
    }
}

impl Workload for Srad {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, _iter: usize) -> Vec<PhaseCost> {
        // Two arithmetic-dense passes: ~40 flops/cell total, ~12 B/cell of
        // streaming traffic.
        let cells = self.cost_cells * self.repeat;
        let mut gpu = GpuPhase::new("coeff+update", cells * 40.0, cells * 12.0, 0.55, 0.50, 0.0);
        gpu.host_floor_s = host_floor_for_gap_fraction(&gpu, &geforce_8800_gtx(), 0.06);
        let cpu = CpuSlice {
            ops: cells * 40.0,
            bytes: cells * 16.0,
            eff: 0.55,
        };
        vec![PhaseCost { gpu, cpu }]
    }

    fn execute(&mut self, _iter: usize, cpu_share: f64) -> f64 {
        let split = ((self.rows as f64) * cpu_share.clamp(0.0, 1.0)).round() as usize;
        let q0 = self.speckle_q0_sqr();
        // Pass 1 on both bands (barrier), then pass 2 on both bands — the
        // same schedule as the divided pthread+CUDA port, so results are
        // split-invariant.
        self.coeff_rows(0, split, q0);
        self.coeff_rows(split, self.rows, q0);
        self.update_rows(0, split);
        self.update_rows(split, self.rows);
        self.digest()
    }

    fn digest(&self) -> f64 {
        self.img.iter().sum()
    }

    fn reset(&mut self) {
        self.img.copy_from_slice(&self.initial_img);
        self.coeff.iter_mut().for_each(|c| *c = 0.0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::iteration_utilization;
    use crate::traits::check_phase;

    #[test]
    fn split_is_invariant() {
        let mut digests = Vec::new();
        for &r in &[0.0, 0.3, 0.5, 1.0] {
            let mut s = Srad::small(2);
            for i in 0..s.iterations() {
                s.execute(i, r);
            }
            digests.push(s.digest());
        }
        for w in digests.windows(2) {
            assert!((w[0] - w[1]).abs() / w[0].abs() < 1e-12, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn speckle_is_reduced() {
        let mut s = Srad::small(3);
        let q_before = s.speckle_q0_sqr();
        for i in 0..s.iterations() {
            s.execute(i, 0.0);
        }
        let q_after = s.speckle_q0_sqr();
        assert!(q_after < q_before, "speckle should shrink: {q_before} -> {q_after}");
    }

    #[test]
    fn image_stays_positive_and_finite() {
        let mut s = Srad::small(4);
        for i in 0..s.iterations() {
            s.execute(i, 0.5);
        }
        assert!(s.img.iter().all(|&x| x.is_finite() && x > 0.0));
    }

    #[test]
    fn coefficients_are_clamped() {
        let mut s = Srad::small(5);
        s.execute(0, 0.0);
        assert!(s.coeff.iter().all(|&c| (0.0..=1.0).contains(&c)));
    }

    #[test]
    fn reset_reproduces_run() {
        let mut s = Srad::small(6);
        s.execute(0, 0.4);
        let d = s.digest();
        s.reset();
        s.execute(0, 0.4);
        assert_eq!(d, s.digest());
    }

    #[test]
    fn phases_are_valid() {
        for p in Srad::paper(1).phases(0) {
            check_phase(&p);
        }
    }

    #[test]
    fn table2_high_core_medium_memory() {
        let s = Srad::paper(1);
        let (u_core, u_mem) = iteration_utilization(&s.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        assert!(s.profile().core_class.contains(u_core), "core util {u_core}");
        assert!(s.profile().mem_class.contains(u_mem), "mem util {u_mem}");
    }
}
