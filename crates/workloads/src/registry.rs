//! The Table II workload registry.
//!
//! Builds the paper's nine-workload suite with the paper's enlargement
//! presets, and provides lookup by the names the paper uses.

use crate::bfs::Bfs;
use crate::hotspot::Hotspot;
use crate::kmeans::KMeans;
use crate::lud::Lud;
use crate::nbody::NBody;
use crate::pathfinder::Pathfinder;
use crate::quasirandom::QuasirandomGen;
use crate::srad::Srad;
use crate::streamcluster::StreamCluster;
use crate::training::TrainingLoop;
use crate::traits::Workload;

/// The names of the Table II workloads, in the paper's order.
pub const TABLE2_NAMES: [&str; 9] = [
    "bfs",
    "lud",
    "nbody",
    "PF",
    "QG",
    "srad_v2",
    "hotspot",
    "kmeans",
    "streamcluster",
];

/// Builds a workload by its Table II name with the paper preset.
pub fn by_name(name: &str, seed: u64) -> Option<Box<dyn Workload>> {
    Some(match name {
        "bfs" => Box::new(Bfs::paper(seed)),
        "lud" => Box::new(Lud::paper(seed)),
        "nbody" => Box::new(NBody::paper(seed)),
        "PF" => Box::new(Pathfinder::paper(seed)),
        "QG" => Box::new(QuasirandomGen::paper(seed)),
        "srad_v2" => Box::new(Srad::paper(seed)),
        "hotspot" => Box::new(Hotspot::paper(seed)),
        "kmeans" => Box::new(KMeans::paper(seed)),
        "streamcluster" => Box::new(StreamCluster::paper(seed)),
        // Not a Table II row: the phase-cycling training workload used by
        // the `training` experiment and the contextual policies.
        "training" => Box::new(TrainingLoop::paper(seed)),
        _ => return None,
    })
}

/// Builds a workload by name with the fast test preset.
pub fn by_name_small(name: &str, seed: u64) -> Option<Box<dyn Workload>> {
    Some(match name {
        "bfs" => Box::new(Bfs::small(seed)),
        "lud" => Box::new(Lud::small(seed)),
        "nbody" => Box::new(NBody::small(seed)),
        "PF" => Box::new(Pathfinder::small(seed)),
        "QG" => Box::new(QuasirandomGen::small(seed)),
        "srad_v2" => Box::new(Srad::small(seed)),
        "hotspot" => Box::new(Hotspot::small(seed)),
        "kmeans" => Box::new(KMeans::small(seed)),
        "streamcluster" => Box::new(StreamCluster::small(seed)),
        "training" => Box::new(TrainingLoop::small(seed)),
        _ => return None,
    })
}

/// The full Table II suite with paper presets.
pub fn all_workloads(seed: u64) -> Vec<Box<dyn Workload>> {
    TABLE2_NAMES
        .iter()
        .map(|n| by_name(n, seed).expect("registered name"))
        .collect()
}

/// The full suite with fast test presets.
pub fn all_workloads_small(seed: u64) -> Vec<Box<dyn Workload>> {
    TABLE2_NAMES
        .iter()
        .map(|n| by_name_small(n, seed).expect("registered name"))
        .collect()
}

/// The names of the workloads that support CPU/GPU division.
pub fn divisible_names(seed: u64) -> Vec<&'static str> {
    all_workloads(seed)
        .iter()
        .filter(|w| w.profile().divisible)
        .map(|w| w.profile().name)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::iteration_utilization;
    use crate::traits::{check_phase, UtilClass};
    use greengpu_hw::calib::geforce_8800_gtx;

    #[test]
    fn registry_has_all_nine_table2_rows() {
        let all = all_workloads(1);
        assert_eq!(all.len(), 9);
        let names: Vec<&str> = all.iter().map(|w| w.profile().name).collect();
        assert_eq!(names, TABLE2_NAMES.to_vec());
    }

    #[test]
    fn unknown_name_returns_none() {
        assert!(by_name("nonsense", 1).is_none());
        assert!(by_name_small("nonsense", 1).is_none());
    }

    #[test]
    fn every_paper_workload_has_valid_phases() {
        for w in all_workloads(1) {
            for iter in 0..2.min(w.iterations()) {
                for p in w.phases(iter) {
                    check_phase(&p);
                }
            }
        }
    }

    #[test]
    fn every_table2_class_is_reproduced() {
        // The headline Table II check: each workload's time-averaged
        // utilizations at peak clocks land in its class band (fluctuating
        // workloads are checked for variability in their own modules).
        let spec = geforce_8800_gtx();
        for w in all_workloads(1) {
            let prof = w.profile();
            if prof.core_class == UtilClass::Fluctuating {
                continue;
            }
            let (u_core, u_mem) = iteration_utilization(&w.phases(0), &spec, 576.0, 900.0);
            assert!(
                prof.core_class.contains(u_core),
                "{}: core util {u_core} not in {:?}",
                prof.name,
                prof.core_class
            );
            assert!(
                prof.mem_class.contains(u_mem),
                "{}: mem util {u_mem} not in {:?}",
                prof.name,
                prof.mem_class
            );
        }
    }

    #[test]
    fn division_support_matches_paper() {
        // The paper's division experiments use kmeans and hotspot;
        // independent-thread workloads (nbody, QG, SC, srad) also divide;
        // bfs/lud/PF have cross-chunk dependencies.
        let div = divisible_names(1);
        for required in ["kmeans", "hotspot", "nbody", "QG", "streamcluster", "srad_v2"] {
            assert!(div.contains(&required), "{required} should be divisible");
        }
        for excluded in ["bfs", "lud", "PF"] {
            assert!(!div.contains(&excluded), "{excluded} should not be divisible");
        }
    }

    #[test]
    fn small_suite_executes_quickly_and_deterministically() {
        let mut suite_a = all_workloads_small(9);
        let mut suite_b = all_workloads_small(9);
        for (a, b) in suite_a.iter_mut().zip(suite_b.iter_mut()) {
            let iters = a.iterations().min(2);
            for i in 0..iters {
                a.execute(i, 0.0);
                b.execute(i, 0.0);
            }
            assert_eq!(a.digest(), b.digest(), "{} not deterministic", a.profile().name);
        }
    }

    #[test]
    fn enlargements_echo_table2() {
        let all = all_workloads(1);
        let get = |n: &str| {
            all.iter()
                .find(|w| w.profile().name == n)
                .map(|w| w.profile().enlargement.clone())
                .unwrap()
        };
        assert!(get("bfs").contains("65536"));
        assert!(get("hotspot").contains("2048 by 2048"));
        assert!(get("kmeans").contains("988040"));
        assert!(get("streamcluster").contains("65536 points with 512 dimensions"));
    }
}
