//! The workload abstraction shared by the runtime and the controllers.

/// Utilization class from the paper's Table II.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UtilClass {
    /// Utilization well below half.
    Low,
    /// Mid-range utilization.
    Medium,
    /// Utilization close to saturation.
    High,
    /// Utilization swings widely over time (the paper's QG and SC).
    Fluctuating,
}

impl UtilClass {
    /// The inclusive band of time-averaged utilization this class maps to
    /// in the reproduction's calibration tests.
    pub fn band(self) -> (f64, f64) {
        match self {
            UtilClass::Low => (0.0, 0.40),
            UtilClass::Medium => (0.40, 0.75),
            UtilClass::High => (0.70, 1.0),
            // Fluctuating classes are checked on variability, not the mean.
            UtilClass::Fluctuating => (0.0, 1.0),
        }
    }

    /// Whether a time-averaged utilization falls inside this class's band.
    pub fn contains(self, u: f64) -> bool {
        let (lo, hi) = self.band();
        (lo..=hi).contains(&u)
    }
}

/// Static description of a workload — the row it occupies in Table II.
#[derive(Debug, Clone)]
pub struct WorkloadProfile {
    /// Short name as the paper uses it (`bfs`, `PF`, `QG`, …).
    pub name: &'static str,
    /// The paper's "Enlargement" column (data size / iteration count).
    pub enlargement: String,
    /// The paper's "Description" column.
    pub description: &'static str,
    /// Expected GPU-core utilization class.
    pub core_class: UtilClass,
    /// Expected GPU-memory utilization class.
    pub mem_class: UtilClass,
    /// Whether the workload supports CPU/GPU workload division (iteration
    /// work is chunk-divisible with mergeable results).
    pub divisible: bool,
}

/// GPU-side cost of one kernel phase.
///
/// `ops` and `bytes` are the raw work counted from the algorithm;
/// `eff_compute`/`eff_mem` are the fractions of the device's peak rates the
/// kernel actually achieves (occupancy, divergence, coalescing — fitted to
/// the paper's measured behaviour); `host_floor_s` is driver/launch/PCIe time
/// during which the GPU idles, independent of GPU frequency.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct GpuPhase {
    /// Phase label for traces.
    pub label: &'static str,
    /// Scalar operations executed on the SMs.
    pub ops: f64,
    /// DRAM bytes moved.
    pub bytes: f64,
    /// Achieved fraction of peak compute throughput, `(0, 1]`.
    pub eff_compute: f64,
    /// Achieved fraction of peak memory bandwidth, `(0, 1]`.
    pub eff_mem: f64,
    /// Host-side gap in seconds (kernel launches, driver sync, PCIe).
    pub host_floor_s: f64,
    /// Memory-controller busy amplification, `≥ 1`.
    ///
    /// nvidia-smi's memory utilization counts *controller-busy* cycles, not
    /// achieved bandwidth; latency-bound access patterns (nbody's texture
    /// fetches, bfs's irregular reads) keep the controller busy far above
    /// their bandwidth fraction. The sensor-visible and power-relevant
    /// memory activity is `min(1, u_mem_roofline × mem_busy_factor)`, while
    /// *timing* stays bandwidth-based — which is how nbody can read "high
    /// memory utilization" in Table II yet be insensitive to memory clock in
    /// Fig. 1.
    pub mem_busy_factor: f64,
}

impl GpuPhase {
    /// Builds a phase with no controller-busy amplification
    /// (`mem_busy_factor = 1`).
    pub fn new(label: &'static str, ops: f64, bytes: f64, eff_compute: f64, eff_mem: f64, host_floor_s: f64) -> Self {
        GpuPhase {
            label,
            ops,
            bytes,
            eff_compute,
            eff_mem,
            host_floor_s,
            mem_busy_factor: 1.0,
        }
    }

    /// Sets the controller-busy amplification (builder style).
    pub fn with_mem_busy_factor(mut self, factor: f64) -> Self {
        debug_assert!(factor >= 1.0);
        self.mem_busy_factor = factor;
        self
    }

    /// Scales the phase to a `share` of the iteration (workload division
    /// assigns `1 - r` of each phase to the GPU).
    pub fn scale(&self, share: f64) -> GpuPhase {
        debug_assert!((0.0..=1.0).contains(&share));
        GpuPhase {
            ops: self.ops * share,
            bytes: self.bytes * share,
            host_floor_s: self.host_floor_s * share,
            ..*self
        }
    }
}

/// CPU-side cost of one phase: the same algorithmic work expressed in CPU
/// operations, executed across all cores (the paper's one-pthread-per-core
/// port).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CpuSlice {
    /// Scalar operations executed by the CPU implementation.
    pub ops: f64,
    /// Host DRAM bytes moved.
    pub bytes: f64,
    /// Achieved fraction of the CPU's nominal throughput, `(0, 1]`.
    pub eff: f64,
}

impl CpuSlice {
    /// Scales the slice to a `share` of the iteration.
    pub fn scale(&self, share: f64) -> CpuSlice {
        debug_assert!((0.0..=1.0).contains(&share));
        CpuSlice {
            ops: self.ops * share,
            bytes: self.bytes * share,
            eff: self.eff,
        }
    }
}

/// The cost of one phase of one iteration, on both sides.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseCost {
    /// GPU-side cost of the full (undivided) phase.
    pub gpu: GpuPhase,
    /// CPU-side cost of the full (undivided) phase.
    pub cpu: CpuSlice,
}

/// A benchmark: functional algorithm + per-iteration cost model.
///
/// An *iteration* is the paper's division quantum — "the execution of a
/// fixed amount of work" (§IV): a reduction point (kmeans), a barrier batch
/// (hotspot steps), or a chunk of an embarrassingly parallel sweep.
pub trait Workload: Send {
    /// The workload's Table II row.
    fn profile(&self) -> &WorkloadProfile;

    /// Number of iterations in a full run.
    fn iterations(&self) -> usize;

    /// Hardware cost of the *full* iteration `iter` (before division). The
    /// runtime scales each phase by the division ratio.
    fn phases(&self, iter: usize) -> Vec<PhaseCost>;

    /// Functionally executes iteration `iter` with `cpu_share` of the
    /// parallel work on the CPU side, merging partial results. Returns a
    /// digest of the iteration's state (for split-invariance checks).
    ///
    /// Non-divisible workloads ignore `cpu_share` (treated as 0).
    fn execute(&mut self, iter: usize, cpu_share: f64) -> f64;

    /// Digest of all state produced so far.
    fn digest(&self) -> f64;

    /// Resets functional state so the workload can be re-run.
    fn reset(&mut self);
}

/// Validates a phase's invariants; used by workload unit tests.
pub fn check_phase(p: &PhaseCost) {
    assert!(p.gpu.ops >= 0.0 && p.gpu.bytes >= 0.0, "negative GPU work");
    assert!(
        p.gpu.eff_compute > 0.0 && p.gpu.eff_compute <= 1.0,
        "eff_compute out of range"
    );
    assert!(p.gpu.eff_mem > 0.0 && p.gpu.eff_mem <= 1.0, "eff_mem out of range");
    assert!(p.gpu.host_floor_s >= 0.0, "negative host gap");
    assert!(p.gpu.mem_busy_factor >= 1.0, "mem_busy_factor must be >= 1");
    assert!(p.cpu.ops >= 0.0 && p.cpu.bytes >= 0.0, "negative CPU work");
    assert!(p.cpu.eff > 0.0 && p.cpu.eff <= 1.0, "cpu eff out of range");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn util_class_bands_cover_unit_interval() {
        assert!(UtilClass::Low.contains(0.1));
        assert!(UtilClass::Medium.contains(0.6));
        assert!(UtilClass::High.contains(0.9));
        assert!(!UtilClass::Low.contains(0.6));
        assert!(!UtilClass::High.contains(0.3));
    }

    #[test]
    fn gpu_phase_scaling_scales_work_and_gap() {
        let p = GpuPhase::new("k", 100.0, 50.0, 0.5, 0.5, 2.0);
        let h = p.scale(0.5);
        assert_eq!(h.ops, 50.0);
        assert_eq!(h.bytes, 25.0);
        assert_eq!(h.host_floor_s, 1.0);
        assert_eq!(h.eff_compute, 0.5);
    }

    #[test]
    fn cpu_slice_scaling() {
        let c = CpuSlice {
            ops: 10.0,
            bytes: 4.0,
            eff: 0.8,
        };
        let h = c.scale(0.25);
        assert_eq!(h.ops, 2.5);
        assert_eq!(h.bytes, 1.0);
        assert_eq!(h.eff, 0.8);
    }

    #[test]
    fn check_phase_accepts_valid() {
        check_phase(&PhaseCost {
            gpu: GpuPhase::new("x", 1.0, 1.0, 1.0, 0.5, 0.0),
            cpu: CpuSlice {
                ops: 1.0,
                bytes: 1.0,
                eff: 1.0,
            },
        });
    }

    #[test]
    #[should_panic(expected = "eff_compute out of range")]
    fn check_phase_rejects_bad_eff() {
        check_phase(&PhaseCost {
            gpu: GpuPhase::new("x", 1.0, 1.0, 1.5, 0.5, 0.0),
            cpu: CpuSlice {
                ops: 1.0,
                bytes: 1.0,
                eff: 1.0,
            },
        });
    }

    #[test]
    fn mem_busy_factor_builder_and_scale_preserve_it() {
        let p = GpuPhase::new("x", 1.0, 1.0, 0.5, 0.5, 0.0).with_mem_busy_factor(4.0);
        assert_eq!(p.mem_busy_factor, 4.0);
        assert_eq!(p.scale(0.5).mem_busy_factor, 4.0);
    }

    #[test]
    #[should_panic(expected = "mem_busy_factor")]
    fn check_phase_rejects_sub_one_busy_factor() {
        let mut p = GpuPhase::new("x", 1.0, 1.0, 0.5, 0.5, 0.0);
        p.mem_busy_factor = 0.5;
        check_phase(&PhaseCost {
            gpu: p,
            cpu: CpuSlice {
                ops: 1.0,
                bytes: 1.0,
                eff: 1.0,
            },
        });
    }
}
