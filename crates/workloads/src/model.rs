//! Evaluating phase costs on the simulated testbed.
//!
//! Shared by the runtime (to advance the simulation) and by calibration
//! tests/benches (to check Table II classes and division optima without
//! running a full simulation).

use crate::traits::{CpuSlice, GpuPhase, PhaseCost};
use greengpu_hw::{CpuSpec, GpuSpec};

/// Timing decomposition of one GPU phase at fixed clocks.
///
/// The phase's wall time is `max(roofline_time, host_floor)`: the host-side
/// driver/launch/PCIe pipeline proceeds *concurrently* with GPU execution,
/// so a phase whose roofline time is below the host floor is host-bound —
/// and throttling the GPU inside that slack is free. This is precisely the
/// premise of the paper's §III case study: "properly scaling down the
/// under-utilized component can save energy with negligible performance
/// impact".
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PhaseTiming {
    /// Wall time of the phase: `max(roofline, host_floor)`, seconds.
    pub wall_s: f64,
    /// Pure-compute roofline component `Tc`, seconds.
    pub compute_s: f64,
    /// Pure-memory roofline component `Tm`, seconds.
    pub memory_s: f64,
    /// Core utilization over the wall time (`Tc / wall`) — the nvidia-smi
    /// "busy cycles / total cycles" analog.
    pub u_core: f64,
    /// Sensor-visible memory utilization over the wall time
    /// (`min(1, mem_busy_factor · Tm / wall)`). Also the memory power
    /// activity.
    pub u_mem: f64,
}

impl PhaseTiming {
    /// Total wall time of the phase, seconds.
    pub fn total_s(&self) -> f64 {
        self.wall_s
    }

    /// Core utilization averaged over the whole phase (alias of `u_core`;
    /// utilization is uniform over the pipelined phase).
    pub fn u_core_avg(&self) -> f64 {
        self.u_core
    }

    /// Memory utilization averaged over the whole phase.
    pub fn u_mem_avg(&self) -> f64 {
        self.u_mem
    }
}

/// Times a GPU phase at explicit core/memory clocks (MHz).
pub fn phase_gpu_timing(phase: &GpuPhase, spec: &GpuSpec, core_mhz: f64, mem_mhz: f64) -> PhaseTiming {
    if phase.ops <= 0.0 && phase.bytes <= 0.0 {
        return PhaseTiming {
            wall_s: phase.host_floor_s,
            compute_s: 0.0,
            memory_s: 0.0,
            u_core: 0.0,
            u_mem: 0.0,
        };
    }
    let ops_rate = spec.ops_per_sec(core_mhz) * phase.eff_compute;
    let byte_rate = spec.bytes_per_sec(mem_mhz) * phase.eff_mem;
    let t = greengpu_hw::gpu_timing(
        &greengpu_hw::WorkUnits::new(phase.ops, phase.bytes),
        ops_rate,
        byte_rate,
        spec.overlap,
    );
    let wall = t.total_s.max(phase.host_floor_s);
    PhaseTiming {
        wall_s: wall,
        compute_s: t.compute_s,
        memory_s: t.memory_s,
        u_core: (t.compute_s / wall).min(1.0),
        u_mem: (t.memory_s / wall * phase.mem_busy_factor).min(1.0),
    }
}

/// Times a CPU slice at an explicit P-state frequency (MHz), spread across
/// all cores.
pub fn phase_cpu_time_s(slice: &CpuSlice, spec: &CpuSpec, mhz: f64) -> f64 {
    if slice.ops <= 0.0 && slice.bytes <= 0.0 {
        return 0.0;
    }
    let rate = spec.ops_per_core_sec(mhz) * slice.eff;
    greengpu_hw::cpu_time(
        &greengpu_hw::WorkUnits::new(slice.ops, slice.bytes),
        spec.n_cores,
        rate,
        spec.mem_bytes_per_sec,
    )
}

/// Total GPU time of a full iteration (all phases, share = 1) at fixed
/// clocks.
pub fn iteration_gpu_time_s(phases: &[PhaseCost], spec: &GpuSpec, core_mhz: f64, mem_mhz: f64) -> f64 {
    phases
        .iter()
        .map(|p| phase_gpu_timing(&p.gpu, spec, core_mhz, mem_mhz).total_s())
        .sum()
}

/// Total CPU time of a full iteration at a fixed P-state.
pub fn iteration_cpu_time_s(phases: &[PhaseCost], spec: &CpuSpec, mhz: f64) -> f64 {
    phases.iter().map(|p| phase_cpu_time_s(&p.cpu, spec, mhz)).sum()
}

/// Computes the host-pipeline floor that leaves the GPU idle a `frac`
/// fraction of the phase's wall time at *peak* clocks (i.e. floor =
/// roofline / (1 − frac)). Workloads use this to express their fitted
/// driver/launch overhead as a fraction rather than absolute seconds.
pub fn host_floor_for_gap_fraction(phase: &GpuPhase, spec: &GpuSpec, frac: f64) -> f64 {
    assert!((0.0..1.0).contains(&frac), "gap fraction must be in [0,1)");
    let peak_core = *spec.core_levels_mhz.last().expect("core levels");
    let peak_mem = *spec.mem_levels_mhz.last().expect("mem levels");
    let mut floorless = *phase;
    floorless.host_floor_s = 0.0;
    let t = phase_gpu_timing(&floorless, spec, peak_core, peak_mem);
    t.wall_s / (1.0 - frac)
}

/// Iteration-level utilization averages at fixed clocks (time-weighted over
/// phases), used by calibration tests for the Table II classes.
pub fn iteration_utilization(phases: &[PhaseCost], spec: &GpuSpec, core_mhz: f64, mem_mhz: f64) -> (f64, f64) {
    let mut total = 0.0;
    let mut core_area = 0.0;
    let mut mem_area = 0.0;
    for p in phases {
        let t = phase_gpu_timing(&p.gpu, spec, core_mhz, mem_mhz);
        total += t.wall_s;
        core_area += t.u_core * t.wall_s;
        mem_area += t.u_mem * t.wall_s;
    }
    // lint:allow(float_eq) zero-phase guard; wall_s sums start from literal 0.0
    if total == 0.0 {
        (0.0, 0.0)
    } else {
        (core_area / total, mem_area / total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::traits::GpuPhase;
    use greengpu_hw::calib::{geforce_8800_gtx, phenom_ii_x2};

    fn phase(ops: f64, bytes: f64, floor: f64) -> GpuPhase {
        GpuPhase::new("t", ops, bytes, 0.5, 0.5, floor)
    }

    #[test]
    fn floor_caps_wall_and_scales_utilization() {
        let spec = geforce_8800_gtx();
        let free = phase_gpu_timing(&phase(1e10, 1e8, 0.0), &spec, 576.0, 900.0);
        let floored = phase_gpu_timing(&phase(1e10, 1e8, 2.0 * free.wall_s), &spec, 576.0, 900.0);
        assert!((floored.wall_s - 2.0 * free.wall_s).abs() < 1e-12);
        assert!((floored.u_core - free.u_core / 2.0).abs() < 1e-9);
        assert_eq!(free.compute_s, floored.compute_s, "roofline components unchanged");
    }

    #[test]
    fn throttling_inside_the_floor_slack_is_free() {
        // The §III premise: while the host pipeline is the bottleneck,
        // lowering GPU clocks does not change wall time — utilization just
        // rises to fill the slack.
        let spec = geforce_8800_gtx();
        let p_free = phase(1e10, 1e8, 0.0);
        let active_peak = phase_gpu_timing(&p_free, &spec, 576.0, 900.0).wall_s;
        let p = phase(1e10, 1e8, active_peak * 2.0);
        let fast = phase_gpu_timing(&p, &spec, 576.0, 900.0);
        let slow = phase_gpu_timing(&p, &spec, 408.0, 900.0);
        assert_eq!(fast.wall_s, slow.wall_s, "host-bound wall time must not move");
        assert!(slow.u_core > fast.u_core, "utilization fills the slack");
    }

    #[test]
    fn throttling_past_the_floor_stretches_wall() {
        let spec = geforce_8800_gtx();
        let p_free = phase(1e10, 1e8, 0.0);
        let active_peak = phase_gpu_timing(&p_free, &spec, 576.0, 900.0).wall_s;
        let p = phase(1e10, 1e8, active_peak * 1.1);
        let fast = phase_gpu_timing(&p, &spec, 576.0, 900.0);
        let slow = phase_gpu_timing(&p, &spec, 296.0, 900.0);
        assert!(slow.wall_s > fast.wall_s * 1.5, "deep throttle must stretch");
    }

    #[test]
    fn empty_phase_is_pure_floor() {
        let spec = geforce_8800_gtx();
        let t = phase_gpu_timing(&phase(0.0, 0.0, 1.5), &spec, 576.0, 900.0);
        assert_eq!(t.wall_s, 1.5);
        assert_eq!(t.u_core, 0.0);
        assert_eq!(t.u_mem_avg(), 0.0);
    }

    #[test]
    fn mem_busy_factor_amplifies_sensor_not_time() {
        let spec = geforce_8800_gtx();
        let base = phase(1e10, 1e8, 0.0);
        let amplified = base.with_mem_busy_factor(4.0);
        let t0 = phase_gpu_timing(&base, &spec, 576.0, 900.0);
        let t1 = phase_gpu_timing(&amplified, &spec, 576.0, 900.0);
        assert_eq!(t0.wall_s, t1.wall_s, "timing unchanged");
        assert!((t1.u_mem - (t0.u_mem * 4.0).min(1.0)).abs() < 1e-12);
        let huge = base.with_mem_busy_factor(1e6);
        let t2 = phase_gpu_timing(&huge, &spec, 576.0, 900.0);
        assert_eq!(t2.u_mem, 1.0);
    }

    #[test]
    fn floor_fraction_helper_hits_target_utilization() {
        let spec = geforce_8800_gtx();
        let mut p = phase(1e10, 1e8, 0.0);
        let u_free = phase_gpu_timing(&p, &spec, 576.0, 900.0).u_core;
        p.host_floor_s = host_floor_for_gap_fraction(&p, &spec, 0.40);
        let t = phase_gpu_timing(&p, &spec, 576.0, 900.0);
        assert!(
            (t.u_core - u_free * 0.60).abs() < 1e-9,
            "u {} vs {}",
            t.u_core,
            u_free * 0.6
        );
    }

    #[test]
    fn cpu_time_uses_efficiency() {
        let spec = phenom_ii_x2();
        let full = CpuSlice {
            ops: 14e9,
            bytes: 1e3,
            eff: 1.0,
        };
        let half = CpuSlice { eff: 0.5, ..full };
        let t_full = phase_cpu_time_s(&full, &spec, 2800.0);
        let t_half = phase_cpu_time_s(&half, &spec, 2800.0);
        assert!((t_half / t_full - 2.0).abs() < 1e-9);
        // 14e9 ops across 2 cores at 7 Gops/core = 1 s.
        assert!((t_full - 1.0).abs() < 1e-9);
    }

    #[test]
    fn empty_cpu_slice_is_free() {
        let spec = phenom_ii_x2();
        let t = phase_cpu_time_s(
            &CpuSlice {
                ops: 0.0,
                bytes: 0.0,
                eff: 1.0,
            },
            &spec,
            2800.0,
        );
        assert_eq!(t, 0.0);
    }

    #[test]
    fn iteration_sums_phases() {
        let spec = geforce_8800_gtx();
        let cpu = CpuSlice {
            ops: 1e9,
            bytes: 1e3,
            eff: 1.0,
        };
        let phases = vec![
            PhaseCost {
                gpu: phase(1e10, 1e8, 0.1),
                cpu,
            },
            PhaseCost {
                gpu: phase(2e10, 2e8, 0.2),
                cpu,
            },
        ];
        let t1 = phase_gpu_timing(&phases[0].gpu, &spec, 576.0, 900.0).wall_s;
        let t2 = phase_gpu_timing(&phases[1].gpu, &spec, 576.0, 900.0).wall_s;
        let sum = iteration_gpu_time_s(&phases, &spec, 576.0, 900.0);
        assert!((sum - (t1 + t2)).abs() < 1e-12);
        let cpu_spec = phenom_ii_x2();
        let c = iteration_cpu_time_s(&phases, &cpu_spec, 2800.0);
        assert!((c - 2.0 * phase_cpu_time_s(&cpu, &cpu_spec, 2800.0)).abs() < 1e-12);
    }

    #[test]
    fn iteration_utilization_weights_by_time() {
        let spec = geforce_8800_gtx();
        let cpu = CpuSlice {
            ops: 1.0,
            bytes: 0.0,
            eff: 1.0,
        };
        // One compute-heavy phase, one pure-floor phase of equal length.
        let p1 = phase(1e10, 1e6, 0.0);
        let t1 = phase_gpu_timing(&p1, &spec, 576.0, 900.0);
        let p2 = phase(0.0, 0.0, t1.wall_s);
        let phases = vec![PhaseCost { gpu: p1, cpu }, PhaseCost { gpu: p2, cpu }];
        let (u_core, _) = iteration_utilization(&phases, &spec, 576.0, 900.0);
        assert!((u_core - t1.u_core / 2.0).abs() < 1e-9);
    }
}
