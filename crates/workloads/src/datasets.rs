//! Synthetic dataset generators.
//!
//! The paper's inputs are real benchmark datasets (Rodinia's kdd_cup
//! features for kmeans, its thermal floorplans for hotspot, …) that are
//! not shipped here; these generators produce inputs with the same
//! *statistical structure*, so the kernels exercise realistic code paths:
//! clustered feature vectors with noise dimensions, R-MAT power-law
//! graphs, floorplan-style power maps with hot functional units, and
//! multiplicative-speckle images.

use greengpu_sim::Pcg32;

/// Clustered feature vectors in the style of kdd_cup: `k` well-separated
/// anchors, unit-variance intra-cluster noise, and a fraction of pure
/// noise dimensions that carry no cluster signal (as real feature sets
/// do).
///
/// Returns `(points, true_assignment)` with `points.len() == n * d`.
pub fn clustered_features(rng: &mut Pcg32, n: usize, d: usize, k: usize, noise_dims: usize) -> (Vec<f64>, Vec<usize>) {
    assert!(k >= 1 && d > noise_dims, "need at least one informative dimension");
    let signal_dims = d - noise_dims;
    let mut anchors = vec![0.0f64; k * signal_dims];
    for a in anchors.iter_mut() {
        *a = rng.uniform(-10.0, 10.0);
    }
    let mut points = vec![0.0f64; n * d];
    let mut labels = vec![0usize; n];
    for i in 0..n {
        let c = rng.index(k);
        labels[i] = c;
        for j in 0..signal_dims {
            points[i * d + j] = anchors[c * signal_dims + j] + rng.normal();
        }
        for j in signal_dims..d {
            points[i * d + j] = rng.normal() * 3.0; // uninformative spread
        }
    }
    (points, labels)
}

/// R-MAT graph generator (Chakrabarti et al.): recursively biased edge
/// placement yields the power-law degree distributions real graphs have —
/// far more representative for bfs than uniform edges.
///
/// `scale` gives `2^scale` vertices; returns `edge_factor · 2^scale`
/// undirected edges as endpoint pairs (self-loops filtered, duplicates
/// kept, as in Graph500).
pub fn rmat_edges(rng: &mut Pcg32, scale: u32, edge_factor: usize) -> Vec<(u32, u32)> {
    assert!((1..=24).contains(&scale), "scale out of supported range");
    // Canonical Graph500 partition probabilities.
    let (a, b, c) = (0.57, 0.19, 0.19);
    let n_edges = edge_factor << scale;
    let mut edges = Vec::with_capacity(n_edges);
    while edges.len() < n_edges {
        let (mut u, mut v) = (0u32, 0u32);
        for bit in (0..scale).rev() {
            let r = rng.next_f64();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + b {
                (0, 1)
            } else if r < a + b + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u |= du << bit;
            v |= dv << bit;
        }
        if u != v {
            edges.push((u, v));
        }
    }
    edges
}

/// Converts an edge list to undirected CSR over `n` vertices, adding a
/// ring so every vertex is reachable (the workloads' connectivity
/// invariant).
pub fn edges_to_csr(n: usize, edges: &[(u32, u32)]) -> (Vec<u32>, Vec<u32>) {
    let mut adjacency: Vec<Vec<u32>> = vec![Vec::new(); n];
    for v in 0..n as u32 {
        let next = (v + 1) % n as u32;
        adjacency[v as usize].push(next);
        adjacency[next as usize].push(v);
    }
    for &(u, v) in edges {
        let (u, v) = (u as usize % n, v as usize % n);
        adjacency[u].push(v as u32);
        adjacency[v].push(u as u32);
    }
    let mut offsets = Vec::with_capacity(n + 1);
    let mut adj = Vec::new();
    offsets.push(0u32);
    for neighbors in &adjacency {
        adj.extend_from_slice(neighbors);
        offsets.push(adj.len() as u32);
    }
    (offsets, adj)
}

/// Floorplan-style power map for hotspot: rectangular functional-unit
/// blocks, a few of which are hot (ALU/FPU class), over a low ambient
/// leakage floor — the structure of Rodinia's thermal inputs.
pub fn floorplan_power_map(rng: &mut Pcg32, rows: usize, cols: usize, hot_blocks: usize) -> Vec<f64> {
    let mut map = vec![0.0f64; rows * cols];
    for p in map.iter_mut() {
        *p = rng.uniform(0.0, 0.3); // leakage floor
    }
    for _ in 0..hot_blocks {
        let h = (rows / 8).max(1) + rng.index((rows / 4).max(1));
        let w = (cols / 8).max(1) + rng.index((cols / 4).max(1));
        let r0 = rng.index(rows.saturating_sub(h).max(1));
        let c0 = rng.index(cols.saturating_sub(w).max(1));
        let density = rng.uniform(4.0, 9.0);
        for r in r0..(r0 + h).min(rows) {
            for c in c0..(c0 + w).min(cols) {
                map[r * cols + c] = density;
            }
        }
    }
    map
}

/// Multiplicative-speckle image in the SRAD paper's model: a smooth
/// underlying reflectivity corrupted by unit-mean speckle noise of the
/// given coefficient of variation.
pub fn speckled_image(rng: &mut Pcg32, rows: usize, cols: usize, speckle_cv: f64) -> Vec<f64> {
    let mut img = vec![0.0f64; rows * cols];
    for (idx, px) in img.iter_mut().enumerate() {
        let (r, c) = (idx / cols, idx % cols);
        // Smooth base: a couple of low-frequency modes.
        let base = 100.0
            + 30.0 * ((r as f64 / rows as f64) * std::f64::consts::PI).sin()
            + 20.0 * ((c as f64 / cols as f64) * 2.0 * std::f64::consts::PI).cos();
        let noise = (1.0 + speckle_cv * rng.normal()).max(0.05);
        *px = base * noise;
    }
    img
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clustered_features_have_separable_structure() {
        let mut rng = Pcg32::seeded(1);
        let (points, labels) = clustered_features(&mut rng, 600, 10, 3, 2);
        assert_eq!(points.len(), 6000);
        // Within-cluster distance (signal dims) must be far below
        // between-cluster distance on average.
        let centroid = |c: usize| -> Vec<f64> {
            let members: Vec<usize> = (0..600).filter(|&i| labels[i] == c).collect();
            let mut m = [0.0; 8];
            for &i in &members {
                for j in 0..8 {
                    m[j] += points[i * 10 + j];
                }
            }
            m.iter().map(|x| x / members.len() as f64).collect()
        };
        let c0 = centroid(0);
        let c1 = centroid(1);
        let between: f64 = c0.iter().zip(&c1).map(|(a, b)| (a - b) * (a - b)).sum::<f64>().sqrt();
        assert!(between > 3.0, "anchors not separated: {between}");
    }

    #[test]
    fn noise_dimensions_carry_no_cluster_signal() {
        let mut rng = Pcg32::seeded(2);
        let (points, labels) = clustered_features(&mut rng, 2000, 6, 2, 2);
        // Mean of a noise dim per cluster ≈ equal.
        let mean_of = |c: usize, j: usize| -> f64 {
            let members: Vec<usize> = (0..2000).filter(|&i| labels[i] == c).collect();
            members.iter().map(|&i| points[i * 6 + j]).sum::<f64>() / members.len() as f64
        };
        let diff = (mean_of(0, 5) - mean_of(1, 5)).abs();
        assert!(diff < 0.5, "noise dim separates clusters: {diff}");
    }

    #[test]
    fn rmat_degrees_are_heavy_tailed() {
        let mut rng = Pcg32::seeded(3);
        let scale = 10;
        let n = 1usize << scale;
        let edges = rmat_edges(&mut rng, scale, 8);
        assert_eq!(edges.len(), 8 * n);
        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let max = *degree.iter().max().unwrap() as f64;
        let mean = degree.iter().map(|&d| f64::from(d)).sum::<f64>() / n as f64;
        // Power-law-ish: the hub dwarfs the mean (uniform graphs give
        // max/mean ≈ 2-3; R-MAT ≥ 10 at this scale).
        assert!(max / mean > 8.0, "degree tail too light: max {max} mean {mean}");
    }

    #[test]
    fn rmat_has_no_self_loops() {
        let mut rng = Pcg32::seeded(4);
        for (u, v) in rmat_edges(&mut rng, 8, 4) {
            assert_ne!(u, v);
        }
    }

    #[test]
    fn csr_is_symmetric_and_connected() {
        let mut rng = Pcg32::seeded(5);
        let n = 256;
        let edges = rmat_edges(&mut rng, 8, 4);
        let (offsets, adj) = edges_to_csr(n, &edges);
        assert_eq!(offsets.len(), n + 1);
        // Symmetry: every (v,u) has a matching (u,v).
        let mut pair_count = std::collections::HashMap::new();
        for v in 0..n {
            for &u in &adj[offsets[v] as usize..offsets[v + 1] as usize] {
                *pair_count.entry((v as u32, u)).or_insert(0i64) += 1;
            }
        }
        for (&(a, b), &cnt) in &pair_count {
            assert_eq!(cnt, pair_count[&(b, a)], "asymmetric edge ({a},{b})");
        }
        // Connectivity via the ring: BFS reaches everything.
        let mut seen = vec![false; n];
        let mut stack = vec![0usize];
        seen[0] = true;
        while let Some(v) = stack.pop() {
            for &u in &adj[offsets[v] as usize..offsets[v + 1] as usize] {
                if !seen[u as usize] {
                    seen[u as usize] = true;
                    stack.push(u as usize);
                }
            }
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn floorplan_map_has_hot_blocks_over_a_floor() {
        let mut rng = Pcg32::seeded(6);
        let map = floorplan_power_map(&mut rng, 64, 64, 4);
        let hot = map.iter().filter(|&&p| p > 3.0).count();
        let cold = map.iter().filter(|&&p| p <= 0.3).count();
        assert!(hot > 16, "no hot region: {hot} cells");
        assert!(cold > map.len() / 4, "floor missing: {cold} cells");
        assert!(map.iter().all(|&p| p >= 0.0));
    }

    #[test]
    fn speckle_statistics_match_the_model() {
        let mut rng = Pcg32::seeded(7);
        let cv = 0.25;
        let img = speckled_image(&mut rng, 128, 128, cv);
        assert!(img.iter().all(|&p| p > 0.0));
        // The measured coefficient of variation should be near the target
        // (the smooth base adds a little).
        let n = img.len() as f64;
        let mean = img.iter().sum::<f64>() / n;
        let var = img.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
        let measured_cv = var.sqrt() / mean;
        assert!((measured_cv - cv).abs() < 0.12, "cv {measured_cv} vs target {cv}");
    }

    #[test]
    fn generators_are_deterministic() {
        let run = || {
            let mut rng = Pcg32::seeded(9);
            let (p, _) = clustered_features(&mut rng, 50, 4, 2, 1);
            let e = rmat_edges(&mut rng, 6, 2);
            let f = floorplan_power_map(&mut rng, 16, 16, 2);
            let s = speckled_image(&mut rng, 16, 16, 0.2);
            (p, e, f, s)
        };
        let a = run();
        let b = run();
        assert_eq!(a.0, b.0);
        assert_eq!(a.1, b.1);
        assert_eq!(a.2, b.2);
        assert_eq!(a.3, b.3);
    }
}
