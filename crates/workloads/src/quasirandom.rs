//! `QG` — quasirandom sequence generator (CUDA SDK "quasirandomGenerator").
//!
//! Table II: 600 iterations over 16 777 216 points, "utilizations highly
//! fluctuate" — the generator alternates between a compute-heavy
//! direction-vector accumulation phase and a bandwidth-heavy scramble/write
//! phase, and the phase mix itself varies between iterations. Together with
//! streamcluster it is the paper's stress test for the WMA scaler's
//! adaptivity.
//!
//! Points are independent, so QG is divisible by index range.

use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;

/// Number of Sobol-style dimensions generated.
pub const DIMS: usize = 4;
const BITS: usize = 32;

/// Quasirandom-generator workload instance.
pub struct QuasirandomGen {
    profile: WorkloadProfile,
    n_func: usize,
    /// Direction vectors per dimension.
    dirs: [[u32; BITS]; DIMS],
    /// Sum of all generated samples (the merged reduction output).
    acc: f64,
    cost_points: f64,
    iters: usize,
}

impl QuasirandomGen {
    /// Paper preset: 16 777 216 points charged to costs, 600-iteration
    /// enlargement folded into 12 iterations.
    pub fn paper(_seed: u64) -> Self {
        QuasirandomGen::with_params(65_536, 16_777_216.0, 12)
    }

    /// Small preset for fast tests.
    pub fn small(_seed: u64) -> Self {
        QuasirandomGen::with_params(1024, 4.0e6, 4)
    }

    /// Fully parameterized constructor. The sequence itself is
    /// deterministic (no RNG): direction vectors follow the classic
    /// Sobol/Niederreiter construction for the first dimensions.
    pub fn with_params(n_func: usize, cost_points: f64, iters: usize) -> Self {
        QuasirandomGen {
            profile: WorkloadProfile {
                name: "QG",
                enlargement: format!("600 iterations; {} points", cost_points as u64),
                description: "Utilizations highly fluctuate",
                core_class: UtilClass::Fluctuating,
                mem_class: UtilClass::Fluctuating,
                divisible: true,
            },
            n_func,
            dirs: build_directions(),
            acc: 0.0,
            cost_points,
            iters,
        }
    }

    /// Generates sample `i` of dimension `dim` in `[0, 1)` using the
    /// Gray-code Sobol construction.
    pub fn sample(&self, dim: usize, i: u64) -> f64 {
        let gray = i ^ (i >> 1);
        let mut x = 0u32;
        for (bit, &v) in self.dirs[dim].iter().enumerate() {
            if (gray >> bit) & 1 == 1 {
                x ^= v;
            }
        }
        f64::from(x) / (u64::from(u32::MAX) + 1) as f64
    }

    /// Sum of samples over index range `[lo, hi)`, all dimensions.
    fn sum_range(&self, offset: u64, lo: usize, hi: usize) -> f64 {
        let mut s = 0.0;
        for i in lo..hi {
            let idx = offset + i as u64;
            for dim in 0..DIMS {
                s += self.sample(dim, idx);
            }
        }
        s
    }
}

/// Direction vectors: dimension 0 is Van der Corput (v_k = 2^(31-k));
/// higher dimensions use small primitive polynomials (Joe–Kuo style seeds).
fn build_directions() -> [[u32; BITS]; DIMS] {
    let mut dirs = [[0u32; BITS]; DIMS];
    // Dimension 0: plain radical inverse.
    for (k, d) in dirs[0].iter_mut().enumerate() {
        *d = 1u32 << (31 - k);
    }
    // Dimensions 1..: primitive polynomial recurrences (degree s, coeff a,
    // initial m values) from the standard Sobol tables.
    let params: [(&[u32], u32); 3] = [(&[1], 0), (&[1, 3], 1), (&[1, 3, 1], 1)];
    for (dim, &(m_init, a)) in params.iter().enumerate() {
        let d = dim + 1;
        let s = m_init.len();
        let mut m: Vec<u32> = m_init.to_vec();
        for k in s..BITS {
            let mut new_m = m[k - s] ^ (m[k - s] << s);
            for j in 1..s {
                if (a >> (s - 1 - j)) & 1 == 1 {
                    new_m ^= m[k - j] << j;
                }
            }
            m.push(new_m);
        }
        for k in 0..BITS {
            dirs[d][k] = m[k] << (31 - k);
        }
    }
    dirs
}

impl Workload for QuasirandomGen {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, iter: usize) -> Vec<PhaseCost> {
        let spec = geforce_8800_gtx();
        let pts = self.cost_points;
        // The 600-iteration enlargement is folded into alternating
        // iteration flavors — generation-heavy (XOR/shift arithmetic
        // dominates) and scramble-heavy (streaming stores dominate). The
        // swing repeats every two iterations (~tens of seconds), which is
        // the fluctuation the 3 s scaling interval must track.
        if iter.is_multiple_of(2) {
            // Generation-heavy: arithmetic intensity ~3.3 ops/B; the WMA
            // fixed point is core level 4 (520 MHz) / memory level 3
            // (740 MHz), both inside the host-pipeline slack.
            let ops = pts * 30.0 * 4_200.0;
            let mut gen = GpuPhase::new("generate-heavy", ops, ops / 3.3, 0.60, 0.50, 0.0);
            gen.host_floor_s = host_floor_for_gap_fraction(&gen, &spec, 0.22);
            let cpu = CpuSlice {
                ops: ops * 0.8,
                bytes: ops / 20.0,
                eff: 0.70,
            };
            vec![PhaseCost { gpu: gen, cpu }]
        } else {
            // Scramble/write-heavy: intensity ~0.72 ops/B; fixed point is
            // core level 2 (408 MHz) / memory level 4 (820 MHz).
            let bytes = pts * 8.0 * 9_700.0;
            let ops = bytes * 0.717;
            let mut write = GpuPhase::new("scramble-heavy", ops, bytes, 0.60, 0.50, 0.0);
            write.host_floor_s = host_floor_for_gap_fraction(&write, &spec, 0.25);
            let cpu = CpuSlice {
                ops,
                bytes: bytes / 4.0,
                eff: 0.70,
            };
            vec![PhaseCost { gpu: write, cpu }]
        }
    }

    fn execute(&mut self, iter: usize, cpu_share: f64) -> f64 {
        let offset = (iter * self.n_func) as u64;
        let split = ((self.n_func as f64) * cpu_share.clamp(0.0, 1.0)).round() as usize;
        // CPU side generates [0, split), GPU side [split, n); the reduction
        // merge is a plain sum.
        let s = self.sum_range(offset, 0, split) + self.sum_range(offset, split, self.n_func);
        self.acc += s;
        s
    }

    fn digest(&self) -> f64 {
        self.acc
    }

    fn reset(&mut self) {
        self.acc = 0.0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::iteration_utilization;
    use crate::traits::check_phase;

    #[test]
    fn samples_are_in_unit_interval() {
        let qg = QuasirandomGen::small(0);
        for dim in 0..DIMS {
            for i in 0..1000u64 {
                let x = qg.sample(dim, i);
                assert!((0.0..1.0).contains(&x), "sample {x} out of range");
            }
        }
    }

    #[test]
    fn low_discrepancy_beats_uniform_spacing_error() {
        // The first 2^k Sobol points in dim 0 hit every dyadic interval
        // exactly once: their mean converges to 0.5 much faster than
        // random. Check the mean over 4096 points is within 1e-3.
        let qg = QuasirandomGen::small(0);
        let n = 4096u64;
        for dim in 0..DIMS {
            let mean: f64 = (0..n).map(|i| qg.sample(dim, i)).sum::<f64>() / n as f64;
            assert!((mean - 0.5).abs() < 1e-3, "dim {dim} mean {mean}");
        }
    }

    #[test]
    fn dim0_first_points_are_van_der_corput() {
        let qg = QuasirandomGen::small(0);
        assert_eq!(qg.sample(0, 0), 0.0);
        assert!((qg.sample(0, 1) - 0.5).abs() < 1e-12);
        // Gray-code ordering: i=2 → gray 3 → 0.75, i=3 → gray 2 → 0.25.
        assert!((qg.sample(0, 2) - 0.75).abs() < 1e-12);
        assert!((qg.sample(0, 3) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn split_is_invariant() {
        let mut digests = Vec::new();
        for &r in &[0.0, 0.25, 0.5, 1.0] {
            let mut qg = QuasirandomGen::small(0);
            for i in 0..qg.iterations() {
                qg.execute(i, r);
            }
            digests.push(qg.digest());
        }
        for w in digests.windows(2) {
            assert!((w[0] - w[1]).abs() / w[0] < 1e-12, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn reset_clears_accumulator() {
        let mut qg = QuasirandomGen::small(0);
        qg.execute(0, 0.0);
        assert!(qg.digest() > 0.0);
        qg.reset();
        assert_eq!(qg.digest(), 0.0);
    }

    #[test]
    fn phases_are_valid_and_fluctuate() {
        let qg = QuasirandomGen::paper(0);
        let spec = geforce_8800_gtx();
        for iter in 0..2 {
            for p in qg.phases(iter) {
                check_phase(&p);
            }
        }
        let (c0, m0) = iteration_utilization(&qg.phases(0), &spec, 576.0, 900.0);
        let (c1, m1) = iteration_utilization(&qg.phases(1), &spec, 576.0, 900.0);
        assert!(
            (c0 - c1).abs() > 0.2 && (m0 - m1).abs() > 0.15,
            "no fluctuation: ({c0},{m0}) vs ({c1},{m1})"
        );
    }

    #[test]
    fn iteration_flavors_lean_opposite_ways() {
        // Generation-heavy iterations are core-dominant; scramble-heavy
        // iterations are memory-dominant — the signature that exercises
        // the coordinated WMA table.
        let qg = QuasirandomGen::paper(0);
        let spec = geforce_8800_gtx();
        let (c0, m0) = iteration_utilization(&qg.phases(0), &spec, 576.0, 900.0);
        let (c1, m1) = iteration_utilization(&qg.phases(1), &spec, 576.0, 900.0);
        assert!(c0 > m0, "even iteration should lean core: ({c0}, {m0})");
        assert!(m1 > c1, "odd iteration should lean memory: ({c1}, {m1})");
        assert!((0.55..0.85).contains(&c0), "even u_core {c0}");
        assert!((0.6..0.8).contains(&m1), "odd u_mem {m1}");
    }
}
