//! `nbody` — all-pairs gravitational N-body (CUDA SDK).
//!
//! The paper's *core-bounded* exemplar: Fig. 1 shows nbody's execution time
//! is nearly flat under memory-frequency throttling (energy drops) but
//! stretches under core-frequency throttling. Table II nonetheless lists
//! "high core and memory utilization" — nvidia-smi's memory utilization
//! counts controller-busy cycles, which nbody's latency-bound tile fetches
//! keep high even though it is nowhere near bandwidth-bound; the cost model
//! expresses that with `mem_busy_factor` (see [`crate::traits::GpuPhase`]).
//!
//! An iteration is one force-computation + leapfrog-integration step.
//! Division splits by bodies: each body's force accumulation over all other
//! bodies is independent.

use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

const SOFTENING2: f64 = 1e-3;
const DT: f64 = 1e-3;

/// N-body workload instance.
pub struct NBody {
    profile: WorkloadProfile,
    n_func: usize,
    pos: Vec<[f64; 3]>,
    vel: Vec<[f64; 3]>,
    mass: Vec<f64>,
    initial_pos: Vec<[f64; 3]>,
    initial_vel: Vec<[f64; 3]>,
    cost_bodies: f64,
    repeat: f64,
    iters: usize,
}

impl NBody {
    /// Paper preset: 65 536 bodies charged to the cost model (functional
    /// state is a 1 024-body sample), 50 iterations (Table II).
    pub fn paper(seed: u64) -> Self {
        NBody::with_params(seed, 1024, 65_536.0, 3.0, 50)
    }

    /// Small preset for fast tests.
    pub fn small(seed: u64) -> Self {
        NBody::with_params(seed, 128, 128.0, 1.5e6, 5)
    }

    /// Fully parameterized constructor.
    pub fn with_params(seed: u64, n_func: usize, cost_bodies: f64, repeat: f64, iters: usize) -> Self {
        assert!(n_func >= 2);
        let mut rng = Pcg32::new(seed, 0x6e_626f_6479); // "nbody"
        let mut pos = Vec::with_capacity(n_func);
        let mut vel = Vec::with_capacity(n_func);
        let mut mass = Vec::with_capacity(n_func);
        for _ in 0..n_func {
            pos.push([rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0), rng.uniform(-1.0, 1.0)]);
            vel.push([rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1), rng.uniform(-0.1, 0.1)]);
            mass.push(rng.uniform(0.5, 1.5) / n_func as f64);
        }
        NBody {
            profile: WorkloadProfile {
                name: "nbody",
                enlargement: format!("{iters} of iterations"),
                description: "High core and memory utilization",
                core_class: UtilClass::High,
                mem_class: UtilClass::High,
                divisible: true,
            },
            n_func,
            initial_pos: pos.clone(),
            initial_vel: vel.clone(),
            pos,
            vel,
            mass,
            cost_bodies,
            repeat,
            iters,
        }
    }

    /// Accelerations for bodies in `[lo, hi)` against all bodies.
    fn accel_range(&self, lo: usize, hi: usize) -> Vec<[f64; 3]> {
        let mut acc = vec![[0.0f64; 3]; hi - lo];
        for (out, i) in acc.iter_mut().zip(lo..hi) {
            let pi = self.pos[i];
            for j in 0..self.n_func {
                let pj = self.pos[j];
                let dx = pj[0] - pi[0];
                let dy = pj[1] - pi[1];
                let dz = pj[2] - pi[2];
                let r2 = dx * dx + dy * dy + dz * dz + SOFTENING2;
                let inv_r = 1.0 / r2.sqrt();
                let f = self.mass[j] * inv_r * inv_r * inv_r;
                out[0] += f * dx;
                out[1] += f * dy;
                out[2] += f * dz;
            }
        }
        acc
    }

    /// Total kinetic + potential energy (physics invariant probe).
    pub fn system_energy(&self) -> f64 {
        let mut e = 0.0;
        for i in 0..self.n_func {
            let v = self.vel[i];
            e += 0.5 * self.mass[i] * (v[0] * v[0] + v[1] * v[1] + v[2] * v[2]);
            for j in (i + 1)..self.n_func {
                let (pi, pj) = (self.pos[i], self.pos[j]);
                let dx = pj[0] - pi[0];
                let dy = pj[1] - pi[1];
                let dz = pj[2] - pi[2];
                let r = (dx * dx + dy * dy + dz * dz + SOFTENING2).sqrt();
                e -= self.mass[i] * self.mass[j] / r;
            }
        }
        e
    }
}

impl Workload for NBody {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, _iter: usize) -> Vec<PhaseCost> {
        // 20 flops per body-pair interaction (3 sub, 6 mul/add for r², rsqrt
        // expansion, 3 FMA per axis + integration amortized).
        let gpu_ops = self.cost_bodies * self.cost_bodies * 20.0 * self.repeat;
        // Tiled shared-memory loads give high arithmetic intensity; the
        // memory *controller* still reads busy (latency-bound tile refills).
        let gpu_bytes = gpu_ops / 12.0;
        let mut gpu = GpuPhase::new("force+integrate", gpu_ops, gpu_bytes, 0.70, 0.70, 0.0).with_mem_busy_factor(5.45);
        gpu.host_floor_s = host_floor_for_gap_fraction(&gpu, &geforce_8800_gtx(), 0.07);
        let cpu = CpuSlice {
            ops: gpu_ops * 0.9,
            bytes: self.cost_bodies * 32.0 * self.repeat,
            eff: 0.65,
        };
        vec![PhaseCost { gpu, cpu }]
    }

    fn execute(&mut self, _iter: usize, cpu_share: f64) -> f64 {
        let split = ((self.n_func as f64) * cpu_share.clamp(0.0, 1.0)).round() as usize;
        // Both sides read the same frozen positions, so the split is exact.
        let acc_cpu = self.accel_range(0, split);
        let acc_gpu = self.accel_range(split, self.n_func);
        let all = acc_cpu.into_iter().chain(acc_gpu);
        for ((vel, pos), acc) in self.vel.iter_mut().zip(self.pos.iter_mut()).zip(all) {
            for k in 0..3 {
                vel[k] += acc[k] * DT;
                pos[k] += vel[k] * DT;
            }
        }
        self.digest()
    }

    fn digest(&self) -> f64 {
        self.pos.iter().flatten().sum::<f64>() + self.vel.iter().flatten().sum::<f64>()
    }

    fn reset(&mut self) {
        self.pos.copy_from_slice(&self.initial_pos);
        self.vel.copy_from_slice(&self.initial_vel);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{iteration_utilization, phase_gpu_timing};
    use crate::traits::check_phase;

    #[test]
    fn split_is_invariant() {
        let mut digests = Vec::new();
        for &r in &[0.0, 0.3, 0.5, 1.0] {
            let mut nb = NBody::small(2);
            for i in 0..nb.iterations() {
                nb.execute(i, r);
            }
            digests.push(nb.digest());
        }
        for w in digests.windows(2) {
            assert!((w[0] - w[1]).abs() < 1e-9, "{} vs {}", w[0], w[1]);
        }
    }

    #[test]
    fn energy_is_roughly_conserved() {
        let mut nb = NBody::small(3);
        let e0 = nb.system_energy();
        for i in 0..nb.iterations() {
            nb.execute(i, 0.0);
        }
        let e1 = nb.system_energy();
        let drift = (e1 - e0).abs() / e0.abs().max(1e-9);
        assert!(drift < 0.05, "energy drift {drift}");
    }

    #[test]
    fn momentum_changes_are_bounded() {
        let mut nb = NBody::small(4);
        nb.execute(0, 0.5);
        assert!(nb.pos.iter().flatten().all(|x| x.is_finite()));
        assert!(nb.vel.iter().flatten().all(|x| x.is_finite()));
    }

    #[test]
    fn reset_reproduces_run() {
        let mut nb = NBody::small(5);
        nb.execute(0, 0.5);
        let d = nb.digest();
        nb.reset();
        nb.execute(0, 0.5);
        assert_eq!(d, nb.digest());
    }

    #[test]
    fn phases_are_valid() {
        for p in NBody::paper(1).phases(0) {
            check_phase(&p);
        }
    }

    #[test]
    fn table2_both_utilizations_read_high() {
        let nb = NBody::paper(1);
        let (u_core, u_mem) = iteration_utilization(&nb.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        assert!(u_core > 0.70, "core util {u_core}");
        assert!(u_mem > 0.70, "mem util {u_mem} (controller-busy)");
    }

    #[test]
    fn fig1_memory_throttle_barely_stretches_time() {
        // Fig. 1a: nbody at memory 500 MHz loses only a few percent.
        let nb = NBody::paper(1);
        let p = nb.phases(0)[0].gpu;
        let spec = geforce_8800_gtx();
        let fast = phase_gpu_timing(&p, &spec, 576.0, 900.0).total_s();
        let slow = phase_gpu_timing(&p, &spec, 576.0, 500.0).total_s();
        let stretch = slow / fast;
        assert!(stretch < 1.05, "nbody memory-throttle stretch {stretch}");
    }

    #[test]
    fn fig1_core_throttle_stretches_time() {
        // Fig. 1c: nbody at core 296 MHz nearly doubles in time.
        let nb = NBody::paper(1);
        let p = nb.phases(0)[0].gpu;
        let spec = geforce_8800_gtx();
        let fast = phase_gpu_timing(&p, &spec, 576.0, 900.0).total_s();
        let slow = phase_gpu_timing(&p, &spec, 296.0, 900.0).total_s();
        let stretch = slow / fast;
        assert!(stretch > 1.6, "nbody core-throttle stretch {stretch}");
    }
}
