//! `hotspot` — 2-D thermal simulation stencil (Rodinia).
//!
//! Table II: 2048×2048 grid, 600 steps, medium core / low memory
//! utilization. The paper's second division workload: §VII-B finds the
//! energy-minimum static division at 50/50 CPU/GPU and reports the dynamic
//! algorithm converging exactly there.
//!
//! An *iteration* is a barrier batch of `steps_per_iter` stencil steps (the
//! paper names hotspot's "step" barriers as its iteration boundary).
//! Division splits the grid by rows: the CPU side takes the top `r` band,
//! the GPU side the rest, with a one-row halo exchanged at the boundary each
//! step — the same decomposition the pthread+CUDA port uses.

use crate::datasets::floorplan_power_map;
use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

/// Rodinia hotspot constants (chip thermal parameters).
const T_AMB: f64 = 80.0;
const CAP: f64 = 0.5;
const RX: f64 = 1.0;
const RY: f64 = 1.0;
const RZ: f64 = 4.0;

/// Hotspot workload instance.
pub struct Hotspot {
    profile: WorkloadProfile,
    rows: usize,
    cols: usize,
    temp: Vec<f64>,
    temp_next: Vec<f64>,
    // lint:allow(unit_safety) Rodinia floorplan dissipation grid in per-cell model units, not a fleet power figure
    power: Vec<f64>,
    initial_temp: Vec<f64>,
    /// Paper-scale cell count charged to the cost model.
    cost_cells: f64,
    steps_per_iter: usize,
    repeat: f64,
    iters: usize,
}

impl Hotspot {
    /// Paper preset: 2048×2048 grid, 600 steps as 15 iterations of 40
    /// steps. Functional grid is 128×128; costs charge the full grid.
    pub fn paper(seed: u64) -> Self {
        Hotspot::with_params(seed, 128, 128, 2048.0 * 2048.0, 40, 300.0, 15)
    }

    /// Small preset for fast tests.
    pub fn small(seed: u64) -> Self {
        Hotspot::with_params(seed, 32, 32, 32.0 * 32.0, 4, 3.0e6, 5)
    }

    /// Fully parameterized constructor.
    pub fn with_params(
        seed: u64,
        rows: usize,
        cols: usize,
        cost_cells: f64,
        steps_per_iter: usize,
        repeat: f64,
        iters: usize,
    ) -> Self {
        assert!(rows >= 4 && cols >= 4, "grid too small");
        let mut rng = Pcg32::new(seed, 0x68_6f74_7370_6f74); // "hotspot"
        let n = rows * cols;
        let mut temp = vec![0.0f64; n];
        for t in temp.iter_mut() {
            *t = T_AMB + rng.uniform(0.0, 20.0);
        }
        // Floorplan-style dissipation: hot functional-unit blocks over a
        // leakage floor, like Rodinia's thermal inputs.
        // lint:allow(unit_safety) per-cell dissipation grid, same model units as the `power` field
        let power = floorplan_power_map(&mut rng, rows, cols, (rows / 16).max(2));
        Hotspot {
            profile: WorkloadProfile {
                name: "hotspot",
                enlargement: "2048 by 2048 grids of 600 iterations".to_string(),
                description: "Medium core utilization, low memory utilization",
                core_class: UtilClass::Medium,
                mem_class: UtilClass::Low,
                divisible: true,
            },
            rows,
            cols,
            initial_temp: temp.clone(),
            temp_next: temp.clone(),
            temp,
            power,
            cost_cells,
            steps_per_iter,
            repeat,
            iters,
        }
    }

    /// One explicit-Euler stencil step over rows `[lo, hi)` reading `temp`
    /// and writing `temp_next`. Boundary cells clamp to themselves
    /// (adiabatic edges, Rodinia behaviour).
    fn step_rows(&mut self, lo: usize, hi: usize) {
        let (r, c) = (self.rows, self.cols);
        for i in lo..hi {
            for j in 0..c {
                let idx = i * c + j;
                let t = self.temp[idx];
                let up = if i > 0 { self.temp[idx - c] } else { t };
                let down = if i + 1 < r { self.temp[idx + c] } else { t };
                let left = if j > 0 { self.temp[idx - 1] } else { t };
                let right = if j + 1 < c { self.temp[idx + 1] } else { t };
                let delta = CAP
                    * (self.power[idx] + (up + down - 2.0 * t) / RY + (left + right - 2.0 * t) / RX + (T_AMB - t) / RZ);
                self.temp_next[idx] = t + delta * 0.01;
            }
        }
    }

    /// Mean grid temperature — a physical sanity probe.
    pub fn mean_temp(&self) -> f64 {
        self.temp.iter().sum::<f64>() / self.temp.len() as f64
    }
}

impl Workload for Hotspot {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, _iter: usize) -> Vec<PhaseCost> {
        let steps = self.steps_per_iter as f64 * self.repeat;
        // 12 flops per cell per step; shared-memory blocking keeps DRAM
        // traffic to ~2 B/cell/step (block-interior reuse).
        let gpu_ops = self.cost_cells * 12.0 * steps;
        let gpu_bytes = self.cost_cells * 2.0 * steps;
        // Per-step launches + halo PCIe traffic give hotspot its low GPU
        // efficiency and its Table II medium-core signature; the fitted
        // constants also place the division optimum at 50/50 (§VII-B).
        let mut gpu = GpuPhase::new("stencil-batch", gpu_ops, gpu_bytes, 0.175, 0.50, 0.0);
        gpu.host_floor_s = host_floor_for_gap_fraction(&gpu, &geforce_8800_gtx(), 0.42);
        // The OpenMP stencil is cache-blocked and vectorized (FMA folds
        // the multiply-accumulate pairs) — it sustains its nominal rate,
        // which is what makes the CPU competitive here and puts the
        // time-balance point at 50/50 (§VII-B).
        let cpu = CpuSlice {
            ops: self.cost_cells * 10.3 * steps,
            bytes: self.cost_cells * 1.0 * steps,
            eff: 1.0,
        };
        vec![PhaseCost { gpu, cpu }]
    }

    fn execute(&mut self, _iter: usize, cpu_share: f64) -> f64 {
        let split_row = ((self.rows as f64) * cpu_share.clamp(0.0, 1.0)).round() as usize;
        for _ in 0..self.steps_per_iter {
            // CPU band [0, split_row), GPU band [split_row, rows); both read
            // the shared halo rows from the previous step's state, so the
            // result is identical to an undivided step.
            self.step_rows(0, split_row);
            self.step_rows(split_row, self.rows);
            std::mem::swap(&mut self.temp, &mut self.temp_next);
        }
        self.digest()
    }

    fn digest(&self) -> f64 {
        self.temp.iter().sum()
    }

    fn reset(&mut self) {
        self.temp.copy_from_slice(&self.initial_temp);
        self.temp_next.copy_from_slice(&self.initial_temp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{iteration_cpu_time_s, iteration_gpu_time_s, iteration_utilization};
    use crate::traits::check_phase;
    use greengpu_hw::calib::phenom_ii_x2;

    #[test]
    fn split_is_invariant() {
        let shares = [0.0, 0.25, 0.5, 0.75, 1.0];
        let mut digests = Vec::new();
        for &r in &shares {
            let mut hs = Hotspot::small(2);
            for i in 0..hs.iterations() {
                hs.execute(i, r);
            }
            digests.push(hs.digest());
        }
        for w in digests.windows(2) {
            assert!(
                (w[0] - w[1]).abs() / w[0].abs() < 1e-12,
                "split changed result: {} vs {}",
                w[0],
                w[1]
            );
        }
    }

    #[test]
    fn temperatures_stay_finite_and_bounded() {
        let mut hs = Hotspot::small(9);
        for i in 0..hs.iterations() {
            hs.execute(i, 0.5);
        }
        assert!(hs.temp.iter().all(|t| t.is_finite()));
        let mean = hs.mean_temp();
        assert!((T_AMB - 10.0..T_AMB + 60.0).contains(&mean), "mean temp {mean}");
    }

    #[test]
    fn heat_diffuses_toward_steady_state() {
        // Variance of the temperature field should shrink as diffusion
        // smooths the random initial condition (power input is small).
        let mut hs = Hotspot::small(4);
        let var = |t: &[f64]| {
            let m = t.iter().sum::<f64>() / t.len() as f64;
            t.iter().map(|x| (x - m).powi(2)).sum::<f64>() / t.len() as f64
        };
        let v0 = var(&hs.temp);
        for i in 0..hs.iterations() {
            hs.execute(i, 0.0);
        }
        let v1 = var(&hs.temp);
        assert!(v1 < v0, "variance should shrink: {v0} -> {v1}");
    }

    #[test]
    fn reset_reproduces_run() {
        let mut hs = Hotspot::small(5);
        hs.execute(0, 0.3);
        let d = hs.digest();
        hs.reset();
        hs.execute(0, 0.3);
        assert_eq!(d, hs.digest());
    }

    #[test]
    fn phases_are_valid() {
        for p in Hotspot::paper(1).phases(0) {
            check_phase(&p);
        }
    }

    #[test]
    fn table2_utilization_class_holds() {
        let hs = Hotspot::paper(1);
        let (u_core, u_mem) = iteration_utilization(&hs.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        assert!(hs.profile().core_class.contains(u_core), "core util {u_core}");
        assert!(hs.profile().mem_class.contains(u_mem), "mem util {u_mem}");
    }

    #[test]
    fn division_balance_point_is_fifty_fifty() {
        // §VII-B: hotspot's energy-minimum division is 50/50 and the
        // algorithm converges exactly there.
        let hs = Hotspot::paper(1);
        let phases = hs.phases(0);
        let tg = iteration_gpu_time_s(&phases, &geforce_8800_gtx(), 576.0, 900.0);
        let tc = iteration_cpu_time_s(&phases, &phenom_ii_x2(), 2800.0);
        let r_star = tg / (tg + tc);
        assert!((0.45..0.55).contains(&r_star), "balance point {r_star}");
    }

    #[test]
    fn paper_iteration_is_tens_of_seconds() {
        let hs = Hotspot::paper(1);
        let tg = iteration_gpu_time_s(&hs.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        assert!((20.0..90.0).contains(&tg), "iteration {tg} s");
    }
}
