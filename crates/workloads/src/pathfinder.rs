//! `PF` (pathfinder) — grid dynamic programming (Rodinia).
//!
//! Table II: 2048×2048 dimensions, *low* core and memory utilization — the
//! row-by-row DP launches one tiny kernel per row, so the GPU idles in host
//! gaps most of the time. This is the workload class where the paper's
//! frequency-scaling tier shines ("for applications with a lower average
//! utilization, such as PF and lud, our scheme yields good energy
//! savings").
//!
//! The row dependency chain makes PF non-divisible; an iteration is a band
//! of rows.

use crate::model::host_floor_for_gap_fraction;
use crate::traits::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;

/// Pathfinder workload instance.
pub struct Pathfinder {
    profile: WorkloadProfile,
    rows: usize,
    cols: usize,
    wall: Vec<u32>,
    dp: Vec<u64>,
    initial_dp: Vec<u64>,
    cost_cells: f64,
    repeat: f64,
    iters: usize,
}

impl Pathfinder {
    /// Paper preset: 2048×2048 charged to costs; functional grid 192×256
    /// processed as 12 row bands.
    pub fn paper(seed: u64) -> Self {
        Pathfinder::with_params(seed, 192, 256, 2048.0 * 2048.0, 1500.0, 12)
    }

    /// Small preset for fast tests.
    pub fn small(seed: u64) -> Self {
        Pathfinder::with_params(seed, 16, 32, 512.0, 6.0e7, 4)
    }

    /// Fully parameterized constructor. `rows` must divide evenly into
    /// `iters` bands.
    pub fn with_params(seed: u64, rows: usize, cols: usize, cost_cells: f64, repeat: f64, iters: usize) -> Self {
        assert!(rows.is_multiple_of(iters), "rows must divide into iteration bands");
        assert!(cols >= 2);
        let mut rng = Pcg32::new(seed, 0x7066); // "pf"
        let wall: Vec<u32> = (0..rows * cols).map(|_| rng.below(10)).collect();
        let dp: Vec<u64> = wall[..cols].iter().map(|&w| u64::from(w)).collect();
        Pathfinder {
            profile: WorkloadProfile {
                name: "PF",
                enlargement: "2048 by 2048 dimensions".to_string(),
                description: "Low core and memory utilization",
                core_class: UtilClass::Low,
                mem_class: UtilClass::Low,
                divisible: false,
            },
            rows,
            cols,
            wall,
            initial_dp: dp.clone(),
            dp,
            cost_cells,
            repeat,
            iters,
        }
    }

    /// The DP frontier (minimum cumulative cost per column so far).
    pub fn frontier(&self) -> &[u64] {
        &self.dp
    }

    /// Minimum path cost over the processed rows.
    pub fn best_cost(&self) -> u64 {
        *self.dp.iter().min().expect("non-empty frontier")
    }
}

impl Workload for Pathfinder {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, _iter: usize) -> Vec<PhaseCost> {
        // Per band: cells/iters cells, 6 ops and 8 bytes each; per-row
        // kernel launches dominate wall time (the fitted 67 % host gap).
        let cells = self.cost_cells * self.repeat / self.iters as f64;
        let mut gpu = GpuPhase::new("dp-rows", cells * 6.0, cells * 8.0, 0.30, 0.40, 0.0);
        gpu.host_floor_s = host_floor_for_gap_fraction(&gpu, &geforce_8800_gtx(), 0.67);
        let cpu = CpuSlice {
            ops: cells * 6.0,
            bytes: cells * 10.0,
            eff: 0.80,
        };
        vec![PhaseCost { gpu, cpu }]
    }

    fn execute(&mut self, iter: usize, _cpu_share: f64) -> f64 {
        let band = self.rows / self.iters;
        let lo = (iter * band).max(1).min(self.rows);
        let hi = ((iter + 1) * band).min(self.rows);
        for i in lo..hi {
            let prev = self.dp.clone();
            for j in 0..self.cols {
                let mut best = prev[j];
                if j > 0 {
                    best = best.min(prev[j - 1]);
                }
                if j + 1 < self.cols {
                    best = best.min(prev[j + 1]);
                }
                self.dp[j] = best + u64::from(self.wall[i * self.cols + j]);
            }
        }
        self.best_cost() as f64
    }

    fn digest(&self) -> f64 {
        self.dp.iter().map(|&x| x as f64).sum()
    }

    fn reset(&mut self) {
        self.dp.copy_from_slice(&self.initial_dp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::iteration_utilization;
    use crate::traits::check_phase;

    #[test]
    fn dp_matches_bruteforce_on_tiny_grid() {
        // 3×3 grid with known walls.
        let mut pf = Pathfinder::with_params(1, 3, 3, 9.0, 1.0, 3);
        pf.wall = vec![
            1, 9, 2, //
            3, 1, 9, //
            9, 1, 4,
        ];
        pf.dp = vec![1, 9, 2];
        pf.initial_dp = pf.dp.clone();
        for i in 0..pf.iterations() {
            pf.execute(i, 0.0);
        }
        // Best path: 1 → 1 → 1 = 3 (start col 0, diag to col 1, stay).
        assert_eq!(pf.best_cost(), 3);
    }

    #[test]
    fn frontier_is_monotone_nondecreasing_over_rows() {
        let mut pf = Pathfinder::small(2);
        let mut prev_best = pf.best_cost();
        for i in 0..pf.iterations() {
            pf.execute(i, 0.0);
            let best = pf.best_cost();
            assert!(best >= prev_best, "path cost cannot shrink as rows accumulate");
            prev_best = best;
        }
    }

    #[test]
    fn reset_reproduces_run() {
        let mut pf = Pathfinder::small(3);
        pf.execute(0, 0.0);
        let d = pf.digest();
        pf.reset();
        pf.execute(0, 0.0);
        assert_eq!(d, pf.digest());
    }

    #[test]
    fn phases_are_valid_and_not_divisible() {
        let pf = Pathfinder::paper(1);
        for p in pf.phases(0) {
            check_phase(&p);
        }
        assert!(!pf.profile().divisible);
    }

    #[test]
    fn table2_both_utilizations_low() {
        let pf = Pathfinder::paper(1);
        let (u_core, u_mem) = iteration_utilization(&pf.phases(0), &geforce_8800_gtx(), 576.0, 900.0);
        assert!(pf.profile().core_class.contains(u_core), "core util {u_core}");
        assert!(pf.profile().mem_class.contains(u_mem), "mem util {u_mem}");
        assert!(u_core < 0.4 && u_mem < 0.4);
    }
}
