//! Property-based tests over the workload suite: split-invariance for any
//! ratio, determinism, and cost-model validity for every iteration.

use greengpu_workloads::registry;
use greengpu_workloads::traits::check_phase;
use proptest::prelude::*;

/// The divisible workloads (small presets run in microseconds).
const DIVISIBLE: [&str; 6] = ["kmeans", "hotspot", "nbody", "QG", "streamcluster", "srad_v2"];

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn any_split_ratio_preserves_results(which in 0usize..6, share in 0.0..1.0f64, seed in 1u64..50) {
        let name = DIVISIBLE[which];
        let mut split = registry::by_name_small(name, seed).expect("registered");
        let mut whole = registry::by_name_small(name, seed).expect("registered");
        let iters = split.iterations().min(3);
        for i in 0..iters {
            split.execute(i, share);
            whole.execute(i, 0.0);
        }
        let (a, b) = (split.digest(), whole.digest());
        let rel = (a - b).abs() / b.abs().max(1e-12);
        prop_assert!(rel < 1e-9, "{name} @ share {share}: {a} vs {b}");
    }

    #[test]
    fn phases_are_valid_for_every_iteration(which in 0usize..9, seed in 1u64..20) {
        let name = registry::TABLE2_NAMES[which];
        let wl = registry::by_name_small(name, seed).expect("registered");
        for i in 0..wl.iterations() {
            for p in wl.phases(i) {
                check_phase(&p);
                prop_assert!(p.gpu.ops > 0.0 || p.gpu.bytes > 0.0 || p.gpu.host_floor_s > 0.0,
                    "{name} iteration {i} has an empty GPU phase");
            }
        }
    }

    #[test]
    fn reset_always_restores_the_initial_state(which in 0usize..9, share in 0.0..1.0f64) {
        let name = registry::TABLE2_NAMES[which];
        let mut wl = registry::by_name_small(name, 7).expect("registered");
        let iters = wl.iterations().min(2);
        let mut first = Vec::new();
        for i in 0..iters {
            first.push(wl.execute(i, share));
        }
        wl.reset();
        for (i, &expected) in first.iter().enumerate() {
            let again = wl.execute(i, share);
            prop_assert_eq!(again, expected, "{} iteration {} diverged after reset", name, i);
        }
    }

    #[test]
    fn digests_are_finite_and_stable(which in 0usize..9, seed in 1u64..20) {
        let name = registry::TABLE2_NAMES[which];
        let mut wl = registry::by_name_small(name, seed).expect("registered");
        for i in 0..wl.iterations().min(2) {
            let d = wl.execute(i, 0.5);
            prop_assert!(d.is_finite(), "{name}: digest {d}");
        }
        prop_assert!(wl.digest().is_finite());
    }

    #[test]
    fn scaling_a_phase_scales_costs_linearly(which in 0usize..9, share in 0.01..1.0f64) {
        let name = registry::TABLE2_NAMES[which];
        let wl = registry::by_name_small(name, 3).expect("registered");
        for p in wl.phases(0) {
            let scaled = p.gpu.scale(share);
            prop_assert!((scaled.ops - p.gpu.ops * share).abs() <= p.gpu.ops * 1e-12);
            prop_assert!((scaled.bytes - p.gpu.bytes * share).abs() <= p.gpu.bytes * 1e-12);
            prop_assert!((scaled.host_floor_s - p.gpu.host_floor_s * share).abs() <= p.gpu.host_floor_s * 1e-12 + 1e-15);
            let c = p.cpu.scale(share);
            prop_assert!((c.ops - p.cpu.ops * share).abs() <= p.cpu.ops * 1e-12);
        }
    }
}
