//! Independent reference validation of the functional kernels.
//!
//! Each workload's hot kernel is checked against a brute-force
//! re-implementation on small, property-generated inputs — a different
//! code path from the in-module unit tests, so a shared bug cannot hide.

use greengpu_workloads::bfs::Bfs;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::pathfinder::Pathfinder;
use greengpu_workloads::quasirandom::{QuasirandomGen, DIMS};
use greengpu_workloads::Workload;
use proptest::prelude::*;

/// Brute-force BFS distances via repeated relaxation (Bellman-Ford style —
/// asymptotically worse, structurally unrelated to the frontier code).
fn relaxation_distances(offsets: &[u32], adj: &[u32], source: usize) -> Vec<u32> {
    let n = offsets.len() - 1;
    let mut dist = vec![u32::MAX; n];
    dist[source] = 0;
    loop {
        let mut changed = false;
        for v in 0..n {
            if dist[v] == u32::MAX {
                continue;
            }
            for &u in &adj[offsets[v] as usize..offsets[v + 1] as usize] {
                if dist[u as usize] > dist[v] + 1 {
                    dist[u as usize] = dist[v] + 1;
                    changed = true;
                }
            }
        }
        if !changed {
            return dist;
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn bfs_matches_relaxation_reference(seed in 1u64..1000, n in 16usize..128, degree in 1usize..4) {
        let mut bfs = Bfs::with_params(seed, n, degree, n as f64, degree as f64 * 2.0, 1.0, 2);
        bfs.execute(0, 0.0);
        let measured = bfs.last_distances().to_vec();
        let (offsets, adj) = bfs.graph();
        let reference = relaxation_distances(offsets, adj, 0);
        prop_assert_eq!(measured, reference);
    }

    #[test]
    fn kmeans_single_step_matches_bruteforce(seed in 1u64..1000) {
        // One Lloyd step on a tiny instance, reproduced from scratch.
        let mut km = KMeans::with_params(seed, 32, 3, 4, 32.0, 1.0, 1);
        // Extract the data via the digest trick: recompute the step
        // manually with the same deterministic construction.
        let mut reference = KMeans::with_params(seed, 32, 3, 4, 32.0, 1.0, 1);
        let a = km.execute(0, 0.0);
        let b = reference.execute(0, 1.0); // all-CPU split — same math
        prop_assert!((a - b).abs() / a.abs().max(1e-12) < 1e-12);
        prop_assert!((km.digest() - reference.digest()).abs() / km.digest().abs().max(1e-12) < 1e-12);
    }

    #[test]
    fn pathfinder_matches_exhaustive_paths(seed in 1u64..500) {
        // Tiny grid: enumerate every admissible path (moves: down with
        // column drift −1/0/+1) and compare the minimum.
        let rows = 4usize;
        let cols = 4usize;
        let mut pf = Pathfinder::with_params(seed, rows, cols, 16.0, 1.0, 4);
        for i in 0..pf.iterations() {
            pf.execute(i, 0.0);
        }
        let dp_best = pf.best_cost();

        // Reconstruct the wall deterministically (the same Pcg32 stream).
        let mut rng = greengpu_sim::Pcg32::new(seed, 0x7066);
        let wall: Vec<u32> = (0..rows * cols).map(|_| rng.below(10)).collect();
        let mut best = u64::MAX;
        // Exhaust all column sequences (cols^rows is tiny here).
        fn rec(wall: &[u32], rows: usize, cols: usize, row: usize, col: usize, acc: u64, best: &mut u64) {
            let acc = acc + u64::from(wall[row * cols + col]);
            if row + 1 == rows {
                *best = (*best).min(acc);
                return;
            }
            for d in -1i64..=1 {
                let next = col as i64 + d;
                if next >= 0 && (next as usize) < cols {
                    rec(wall, rows, cols, row + 1, next as usize, acc, best);
                }
            }
        }
        for start in 0..cols {
            rec(&wall, rows, cols, 0, start, 0, &mut best);
        }
        prop_assert_eq!(dp_best, best);
    }

    #[test]
    fn quasirandom_prefix_sums_match_direct_evaluation(n in 1usize..200) {
        // The workload's range-sum must equal naively summing samples.
        let qg = QuasirandomGen::with_params(n, n as f64, 1);
        let mut direct = 0.0;
        for i in 0..n as u64 {
            for dim in 0..DIMS {
                direct += qg.sample(dim, i);
            }
        }
        let mut wl = QuasirandomGen::with_params(n, n as f64, 1);
        let via_execute = wl.execute(0, 0.0);
        prop_assert!((direct - via_execute).abs() < 1e-9);
    }

    #[test]
    fn sobol_dim0_bit_reversal_property(i in 0u64..4096) {
        // Dimension 0 with Gray-code ordering satisfies the net property:
        // among the first 2^k points, every dyadic interval of length
        // 2^-k contains exactly one point. Check via bit reversal: the
        // sample equals reverse_bits(gray(i)) / 2^32.
        let qg = QuasirandomGen::with_params(8, 8.0, 1);
        let gray = i ^ (i >> 1);
        let expected = f64::from((gray as u32).reverse_bits()) / (u64::from(u32::MAX) + 1) as f64;
        prop_assert!((qg.sample(0, i) - expected).abs() < 1e-15);
    }
}
