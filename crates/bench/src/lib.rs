//! Shared helpers for the GreenGPU benchmark harness.
//!
//! Each bench target regenerates one of the paper's tables/figures under
//! Criterion timing (how long the simulated experiment takes to run) and,
//! for `kernels`, measures the *functional* Rust re-implementations of the
//! Rodinia workloads themselves.

#![forbid(unsafe_code)]

/// A deterministic seed family for bench runs (distinct from the repro
/// binary's default so cached results never alias).
pub const BENCH_SEED: u64 = 0x67_67_70_75; // "ggpu"

/// Criterion sample size for whole-experiment benches (each iteration runs
/// a full simulated experiment, so keep the count modest).
pub const EXPERIMENT_SAMPLES: usize = 10;
