//! Bench: Fig. 8 — the holistic two-tier controller vs single-tier
//! baselines, plus the §VII-B static-search oracle (the remaining
//! evaluation artifacts).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use greengpu::baselines::{run_with_config, static_search};
use greengpu::GreenGpuConfig;
use greengpu_bench::{BENCH_SEED, EXPERIMENT_SAMPLES};
use greengpu_runtime::RunConfig;
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;

fn bench_policies(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8/policies_on_hotspot");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    for (label, cfg) in [
        ("greengpu", GreenGpuConfig::holistic()),
        ("division_only", GreenGpuConfig::division_only()),
        ("scaling_only", GreenGpuConfig::scaling_only()),
    ] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || Hotspot::paper(BENCH_SEED),
                |mut wl| run_with_config(&mut wl, cfg, RunConfig::sweep()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_figure(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8/full_experiment");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    g.bench_function("regenerate", |b| {
        b.iter(|| greengpu_repro::fig8::run(std::hint::black_box(BENCH_SEED)))
    });
    g.finish();
}

fn bench_static_search(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig8/static_search_oracle");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    g.bench_function("kmeans_19_points", |b| {
        b.iter(|| static_search(|| Box::new(KMeans::paper(BENCH_SEED)), 0.05, 0.90))
    });
    g.finish();
}

criterion_group!(benches, bench_policies, bench_full_figure, bench_static_search);
criterion_main!(benches);
