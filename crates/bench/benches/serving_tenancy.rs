//! Bench: serving-layer throughput and dispatch-path latencies — writes
//! `results/BENCH_7.json`.
//!
//! Three measurements (ROADMAP item 2's missing bench rows):
//!
//! 1. **Single-node intervals/sec** per Tier-2 frequency policy: one
//!    default node simulated under each policy (WMA, EXP3, UCB,
//!    deadline), reported as control intervals simulated per wall
//!    second and as mean decision latency per interval — every interval
//!    runs one masked policy decision over the card's full frequency-
//!    pair grid (6×6 = 36 pairs on the default card).
//! 2. **Serving-scenario throughput**: the three-tenant reference mix
//!    (diurnal + bursty + batch tenants, carbon-aware deferral) on a
//!    4-node fleet, as intervals/sec on the event engine.
//! 3. **Name interning before/after**: the telemetry/dispatch hot path
//!    used to re-key the profile table by workload `String` every
//!    advance window; jobs now carry an interned `u32` id resolved once
//!    at dispatch. The microbench times the old lookup
//!    (`BTreeMap<String, _>` keyed by owned name) against the new one
//!    (`Vec` indexed by id) over the same access sequence.
//!
//! Methodology is recorded in the JSON alongside the rows.

use greengpu::{DeadlineParams, Exp3Params, UcbParams};
use greengpu_bench::BENCH_SEED;
use greengpu_cluster::{run_fleet, EngineKind, FleetConfig, NodeConfig, Policy, PolicySpec, ServingConfig};
use greengpu_sim::{JsonValue, SimDuration};
use std::collections::BTreeMap;
use std::time::Instant;

/// Simulated horizon for the per-policy single-node runs, seconds (one
/// control interval per second).
const POLICY_HORIZON_S: u64 = 2_000;
/// Simulated horizon for the serving-scenario run, seconds.
const SERVING_HORIZON_S: u64 = 600;
/// Lookups timed in the interning microbench.
const LOOKUPS: usize = 2_000_000;

/// Times one single-node fleet under `spec`: (intervals/sec, mean
/// decision latency in microseconds, completed jobs).
fn timed_policy(spec: PolicySpec) -> (f64, f64, usize) {
    let nodes = vec![NodeConfig::default_node().with_freq_policy(spec)];
    let cfg = FleetConfig::from_nodes(
        nodes,
        0.85,
        Policy::LeastLoaded,
        SimDuration::from_secs(POLICY_HORIZON_S),
        BENCH_SEED,
    );
    let start = Instant::now();
    let report = run_fleet(&cfg);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let intervals = POLICY_HORIZON_S as f64;
    (intervals / wall, wall / intervals * 1e6, report.completed.len())
}

/// Times the serving reference scenario on the event engine:
/// (intervals/sec, completed, deferred).
fn timed_serving() -> (f64, usize, u64) {
    let base = FleetConfig::homogeneous(
        4,
        0.80,
        Policy::LeastLoaded,
        SimDuration::from_secs(SERVING_HORIZON_S),
        BENCH_SEED,
    );
    let serving = ServingConfig::reference_mix(BENCH_SEED, SERVING_HORIZON_S as f64, base.reference_size_scale());
    let cfg = base.with_serving(serving).with_engine(EngineKind::EventDriven);
    let start = Instant::now();
    let report = run_fleet(&cfg);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    (
        SERVING_HORIZON_S as f64 / wall,
        report.completed.len(),
        report.jobs_deferred,
    )
}

/// Times the pre-interning profile lookup (`BTreeMap` keyed by workload
/// `String`) vs the interned one (`Vec` indexed by `u32`) over the same
/// access pattern. Returns (before_ns, after_ns) per lookup.
fn timed_interning() -> (f64, f64) {
    let names = ["hotspot", "kmeans", "lud", "srad", "backprop", "pathfinder"];
    let map: BTreeMap<String, f64> = names
        .iter()
        .enumerate()
        .map(|(i, n)| (n.to_string(), i as f64))
        .collect();
    let seq: Vec<f64> = (0..names.len()).map(|i| i as f64).collect();

    let mut acc = 0.0f64;
    let start = Instant::now();
    for i in 0..LOOKUPS {
        let name = names[i % names.len()];
        acc += map.get(name).copied().unwrap_or(0.0);
    }
    let before = start.elapsed().as_secs_f64() / LOOKUPS as f64 * 1e9;

    let start = Instant::now();
    for i in 0..LOOKUPS {
        let id = (i % seq.len()) as u32;
        acc += seq.get(id as usize).copied().unwrap_or(0.0);
    }
    let after = start.elapsed().as_secs_f64() / LOOKUPS as f64 * 1e9;
    // Keep the accumulator observable so the loops cannot be elided.
    assert!(acc.is_finite());
    (before, after)
}

fn main() {
    let policies: [(&str, PolicySpec); 4] = [
        ("wma", PolicySpec::default()),
        ("exp3", PolicySpec::Exp3(Exp3Params::default())),
        ("ucb", PolicySpec::Ucb(UcbParams::default())),
        ("deadline", PolicySpec::Deadline(DeadlineParams::default())),
    ];
    let mut rows: Vec<JsonValue> = Vec::new();
    for (name, spec) in policies {
        let (rate, decision_us, completed) = timed_policy(spec);
        println!("policy {name:<9} {rate:>12.0} intervals/s  {decision_us:>8.3} us/decision  ({completed} jobs)");
        rows.push(JsonValue::Obj(vec![
            ("policy".to_string(), JsonValue::str(name)),
            ("intervals_per_s".to_string(), JsonValue::f64(rate)),
            ("decision_latency_us".to_string(), JsonValue::f64(decision_us)),
            ("completed_jobs".to_string(), JsonValue::usize(completed)),
        ]));
    }

    let (serving_rate, serving_completed, serving_deferred) = timed_serving();
    println!(
        "serving   reference  {serving_rate:>12.0} intervals/s  ({serving_completed} jobs, {serving_deferred} deferred)"
    );

    let (before_ns, after_ns) = timed_interning();
    println!(
        "interning  before {before_ns:.2} ns/lookup (BTreeMap<String>)  after {after_ns:.2} ns/lookup (Vec by id)"
    );

    let doc = JsonValue::Obj(vec![
        ("bench".to_string(), JsonValue::str("serving_tenancy")),
        ("seed".to_string(), JsonValue::u64(BENCH_SEED)),
        (
            "methodology".to_string(),
            JsonValue::str(
                "per-policy rows: one default node simulated for 2000 one-second control \
                 intervals under each Tier-2 policy; every interval runs one masked decision \
                 over the card's full 36-pair frequency grid, so decision_latency_us bounds the \
                 per-decision cost from above (it includes job service bookkeeping). serving \
                 row: 3-tenant reference mix, 4 nodes, carbon-aware, event engine. interning \
                 rows: the advance-window profile lookup before (BTreeMap keyed by workload \
                 String) vs after (Vec indexed by the u32 id jobs now carry from dispatch), \
                 2e6 lookups each.",
            ),
        ),
        ("policy_rows".to_string(), JsonValue::Arr(rows)),
        (
            "serving".to_string(),
            JsonValue::Obj(vec![
                ("mix".to_string(), JsonValue::str("reference")),
                ("nodes".to_string(), JsonValue::usize(4)),
                ("engine".to_string(), JsonValue::str("event")),
                ("horizon_s".to_string(), JsonValue::u64(SERVING_HORIZON_S)),
                ("intervals_per_s".to_string(), JsonValue::f64(serving_rate)),
                ("completed_jobs".to_string(), JsonValue::usize(serving_completed)),
                ("jobs_deferred".to_string(), JsonValue::u64(serving_deferred)),
            ]),
        ),
        (
            "name_interning".to_string(),
            JsonValue::Obj(vec![
                ("before_ns_per_lookup".to_string(), JsonValue::f64(before_ns)),
                ("after_ns_per_lookup".to_string(), JsonValue::f64(after_ns)),
                (
                    "note".to_string(),
                    JsonValue::str(
                        "jobs now carry an interned u32 profile id resolved once at dispatch \
                         (crates/cluster/src/node.rs); the per-window hot path indexes a Vec \
                         instead of re-keying a BTreeMap by String",
                    ),
                ),
            ]),
        ),
    ]);
    let out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_7.json");
    std::fs::write(&out, format!("{doc}\n")).expect("write results/BENCH_7.json");
    println!("wrote results/BENCH_7.json");
}
