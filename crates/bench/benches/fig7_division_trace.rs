//! Bench: Fig. 7 — workload-division convergence traces (kmeans, hotspot).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use greengpu::baselines::run_with_config;
use greengpu::GreenGpuConfig;
use greengpu_bench::{BENCH_SEED, EXPERIMENT_SAMPLES};
use greengpu_runtime::RunConfig;
use greengpu_workloads::hotspot::Hotspot;
use greengpu_workloads::kmeans::KMeans;

fn bench_division_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7/division_only_runs");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    g.bench_function("kmeans", |b| {
        b.iter_batched(
            || KMeans::paper(BENCH_SEED),
            |mut wl| run_with_config(&mut wl, GreenGpuConfig::division_only(), RunConfig::sweep()),
            BatchSize::SmallInput,
        )
    });
    g.bench_function("hotspot", |b| {
        b.iter_batched(
            || Hotspot::paper(BENCH_SEED),
            |mut wl| run_with_config(&mut wl, GreenGpuConfig::division_only(), RunConfig::sweep()),
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_full_figure(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig7/full_experiment");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    g.bench_function("regenerate", |b| {
        b.iter(|| greengpu_repro::fig7::run(std::hint::black_box(BENCH_SEED)))
    });
    g.finish();
}

criterion_group!(benches, bench_division_runs, bench_full_figure);
criterion_main!(benches);
