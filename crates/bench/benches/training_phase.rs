//! Bench: training-workload policy throughput and trace-CSV formatting —
//! writes `results/BENCH_8.json`.
//!
//! Two measurements:
//!
//! 1. **Training throughput per policy**: the phase-cycling
//!    [`TrainingLoop`] driven through the scaling-only controller under
//!    each Tier-2 policy, including the phase-conditioned contextual
//!    bandits, reported as control intervals simulated per wall second
//!    and mean per-decision latency. The contextual rows price what the
//!    detector + per-phase routing adds on top of the flat bandits.
//! 2. **Trace CSV formatting before/after**: rendering a fleet trace
//!    through the generic `Table` (per-cell `String` allocations, the
//!    pre-existing path) vs `FleetTrace::write_csv_into` (one reusable
//!    scratch buffer, zero allocations per row). The outputs are
//!    byte-identical — asserted here and unit-tested in
//!    `crates/cluster/src/telemetry.rs` — so golden traces are
//!    unchanged and the delta is pure formatting cost.
//!
//! Methodology is recorded in the JSON alongside the rows.

use greengpu::baselines::run_with_policy;
use greengpu::{
    pair_model_for, DeadlineParams, Exp3Params, GreenGpuConfig, PhaseDetectorParams, PolicySpec, SwitchingParams,
    UcbParams, WmaParams,
};
use greengpu_bench::BENCH_SEED;
use greengpu_cluster::telemetry::{FleetTrace, TraceRow};
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_runtime::RunConfig;
use greengpu_sim::JsonValue;
use greengpu_workloads::training::TrainingLoop;
use std::time::Instant;

/// Training iterations per policy run (≈2 control intervals each).
const TRAIN_ITERS: usize = 120;
/// Iterations per phase stage.
const PHASE_PERIOD: usize = 4;
/// Synthetic trace rows for the CSV formatting comparison.
const TRACE_ROWS: usize = 20_000;
/// Render repetitions per CSV timing.
const TRACE_REPS: usize = 20;

/// The policy grid: same shapes the `training` repro experiment sweeps.
fn specs() -> Vec<(&'static str, PolicySpec)> {
    let gpu = geforce_8800_gtx();
    let levels = Some((gpu.core_levels_mhz.clone(), gpu.mem_levels_mhz.clone()));
    let exp3 = Exp3Params {
        switching: SwitchingParams::none(),
        ..Exp3Params::default()
    };
    let ucb = UcbParams {
        c: 0.02,
        switching: SwitchingParams::none(),
        ..UcbParams::default()
    };
    let detector = PhaseDetectorParams::default();
    vec![
        ("wma", PolicySpec::Wma(WmaParams::default())),
        ("exp3-nosw", PolicySpec::Exp3(exp3)),
        ("ucb-nosw", PolicySpec::Ucb(ucb)),
        (
            "ctx-exp3",
            PolicySpec::ContextualExp3 {
                inner: exp3,
                detector,
                levels: levels.clone(),
            },
        ),
        (
            "ctx-ucb",
            PolicySpec::ContextualUcb {
                inner: ucb,
                detector,
                levels,
            },
        ),
        ("deadline", PolicySpec::Deadline(DeadlineParams::default())),
    ]
}

/// Times one training run under `spec`: (intervals/sec, mean decision
/// latency in microseconds, intervals simulated).
fn timed_training(spec: &PolicySpec) -> (f64, f64, u64) {
    let gpu = geforce_8800_gtx();
    let mut wl = TrainingLoop::with_params(128, TRAIN_ITERS, PHASE_PERIOD, 1.0, BENCH_SEED);
    let model = pair_model_for(&wl, &gpu);
    let spec = match spec {
        PolicySpec::Deadline(_) => PolicySpec::Deadline(DeadlineParams {
            time_budget_s: model.peak_time_s() * 1.25,
            ..DeadlineParams::default()
        }),
        other => other.clone(),
    };
    let policy = spec
        .build(6, 6, BENCH_SEED, Some(&model))
        .expect("bench specs are valid");
    let start = Instant::now();
    let outcome = run_with_policy(&mut wl, GreenGpuConfig::scaling_only(), RunConfig::sweep(), policy);
    let wall = start.elapsed().as_secs_f64().max(1e-9);
    let intervals = outcome.telemetry.intervals;
    (intervals as f64 / wall, wall / intervals.max(1) as f64 * 1e6, intervals)
}

/// A synthetic but realistic-shaped fleet trace of `n` rows.
fn synth_trace(n: usize) -> FleetTrace {
    let rows = (1..=n as u64)
        .map(|k| TraceRow {
            interval: k,
            time_s: k as f64 * 3.0,
            queue_depth: (k % 7) as usize,
            busy_nodes: 3,
            healthy_nodes: 4,
            gpu_power_w: 180.0 + (k % 50) as f64 * 0.73,
            total_power_w: 260.0 + (k % 50) as f64 * 0.91,
            fleet_cap_w: 900.0,
            budget_w: 1_000.0,
            completed: k / 3,
            rejected: k / 40,
            deadline_misses: k / 90,
            cap_violations: k / 200,
            max_pair_over_cap_w: if k % 9 == 0 { 4.25 } else { 0.0 },
            up_nodes: 4,
            open_breakers: 0,
            retry_depth: (k % 3) as usize,
            dead_lettered: 0,
        })
        .collect();
    FleetTrace { rows }
}

/// Times the two CSV renderers over the same trace. Returns
/// (before_ns_per_row, after_ns_per_row).
fn timed_trace_csv(trace: &FleetTrace) -> (f64, f64) {
    // Before: the generic Table path — one Vec<String> per row, one
    // String per cell, then the RFC-4180 escape scan per cell.
    let mut sink = 0usize;
    let start = Instant::now();
    for _ in 0..TRACE_REPS {
        sink += trace.to_table("t").to_csv().len();
    }
    let before = start.elapsed().as_secs_f64() / (TRACE_REPS * trace.rows.len()) as f64 * 1e9;

    // After: one scratch buffer reused across renders.
    let mut buf = String::new();
    let start = Instant::now();
    for _ in 0..TRACE_REPS {
        buf.clear();
        trace.write_csv_into(&mut buf);
        sink += buf.len();
    }
    let after = start.elapsed().as_secs_f64() / (TRACE_REPS * trace.rows.len()) as f64 * 1e9;

    // Keep the renders observable and re-assert byte equality at bench
    // scale (the unit test covers small traces).
    assert!(sink > 0);
    assert_eq!(buf, trace.to_table("t").to_csv());
    (before, after)
}

fn main() {
    let mut rows: Vec<JsonValue> = Vec::new();
    for (name, spec) in specs() {
        let (rate, decision_us, intervals) = timed_training(&spec);
        println!(
            "training {name:<9} {rate:>12.0} intervals/s  {decision_us:>8.3} us/decision  ({intervals} intervals)"
        );
        rows.push(JsonValue::Obj(vec![
            ("policy".to_string(), JsonValue::str(name)),
            ("intervals_per_s".to_string(), JsonValue::f64(rate)),
            ("decision_latency_us".to_string(), JsonValue::f64(decision_us)),
            ("intervals".to_string(), JsonValue::u64(intervals)),
        ]));
    }

    let trace = synth_trace(TRACE_ROWS);
    let (before_ns, after_ns) = timed_trace_csv(&trace);
    println!("trace csv  before {before_ns:.1} ns/row (Table)  after {after_ns:.1} ns/row (scratch buffer)");

    let doc = JsonValue::Obj(vec![
        ("bench".to_string(), JsonValue::str("training_phase")),
        ("seed".to_string(), JsonValue::u64(BENCH_SEED)),
        (
            "methodology".to_string(),
            JsonValue::str(
                "training rows: the phase-cycling TrainingLoop (128 samples, 120 iterations, \
                 4-iteration stages, paper-scale cost) run through the scaling-only controller \
                 under each Tier-2 policy incl. the phase-conditioned contextual bandits; \
                 intervals_per_s counts simulated 3 s control intervals per wall second, \
                 decision_latency_us is its inverse (upper bound per masked 36-pair decision, \
                 including workload advancement). trace_csv rows: a 20k-row synthetic fleet \
                 trace rendered 20x through the generic Table (per-cell String allocations) vs \
                 FleetTrace::write_csv_into (one reusable scratch buffer, no per-row \
                 allocations); outputs are asserted byte-identical, so golden traces are \
                 unchanged.",
            ),
        ),
        ("training_rows".to_string(), JsonValue::Arr(rows)),
        (
            "trace_csv".to_string(),
            JsonValue::Obj(vec![
                ("rows".to_string(), JsonValue::usize(TRACE_ROWS)),
                ("reps".to_string(), JsonValue::usize(TRACE_REPS)),
                ("before_ns_per_row".to_string(), JsonValue::f64(before_ns)),
                ("after_ns_per_row".to_string(), JsonValue::f64(after_ns)),
                (
                    "note".to_string(),
                    JsonValue::str(
                        "before = FleetTrace::to_table().to_csv() (one Vec<String> per row plus \
                         an escape scan per cell); after = FleetTrace::write_csv_into with one \
                         reused String scratch buffer (crates/cluster/src/telemetry.rs)",
                    ),
                ),
            ]),
        ),
    ]);
    let out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_8.json");
    std::fs::write(&out, format!("{doc}\n")).expect("write results/BENCH_8.json");
    println!("wrote results/BENCH_8.json");
}
