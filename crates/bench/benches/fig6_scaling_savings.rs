//! Bench: Fig. 6 — the frequency-scaling tier across all nine workloads
//! (also covers the Fig. 5 trace generation, which is the streamcluster
//! member of this sweep).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_bench::{BENCH_SEED, EXPERIMENT_SAMPLES};
use greengpu_runtime::RunConfig;
use greengpu_workloads::registry;

fn bench_per_workload(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/scaling_only_runs");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    for name in registry::TABLE2_NAMES {
        g.bench_function(name, |b| {
            b.iter_batched(
                || registry::by_name(name, BENCH_SEED).expect("registered"),
                |mut wl| run_with_config(wl.as_mut(), GreenGpuConfig::scaling_only(), RunConfig::sweep()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_baseline(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/best_performance_runs");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    for name in ["streamcluster", "kmeans", "bfs"] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || registry::by_name(name, BENCH_SEED).expect("registered"),
                |mut wl| run_best_performance_with(wl.as_mut(), RunConfig::sweep()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_figure(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6/full_experiment");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    g.bench_function("all_nine_workloads", |b| {
        b.iter(|| greengpu_repro::fig6::compute(std::hint::black_box(BENCH_SEED)))
    });
    g.finish();
}

criterion_group!(benches, bench_per_workload, bench_baseline, bench_full_figure);
criterion_main!(benches);
