//! Bench: ablations over the design choices DESIGN.md calls out.
//!
//! Each group measures the *outcome-relevant* code path under a parameter
//! sweep so regressions in either speed or convergence behaviour surface:
//!
//! * WMA parameters (α, φ, β, history λ) — scaler convergence loops;
//! * division step size and the oscillation safeguard;
//! * the 8-bit quantized weight table vs the f64 reference (§VI);
//! * the roofline overlap factor (model sensitivity).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use greengpu::division::{DivisionController, DivisionParams};
use greengpu::quantized::QuantizedWma;
use greengpu::wma::{WmaParams, WmaScaler};
use greengpu_bench::BENCH_SEED;
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_hw::WorkUnits;
use greengpu_sim::Pcg32;

fn bench_wma_params(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/wma_observe");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    // 1000 observe intervals of a noisy fluctuating trace per iteration.
    let mut run = |label: String, params: WmaParams| {
        g.bench_function(label, |b| {
            b.iter_batched(
                || (WmaScaler::new(6, 6, params), Pcg32::seeded(BENCH_SEED)),
                |(mut s, mut rng)| {
                    let mut last = (0, 0);
                    for k in 0..1000 {
                        let phase = if (k / 20) % 2 == 0 { 0.8 } else { 0.2 };
                        let u = (phase + rng.uniform(-0.05, 0.05)).clamp(0.0, 1.0);
                        last = s.observe(u, 1.0 - u);
                    }
                    last
                },
                BatchSize::SmallInput,
            )
        });
    };
    run("defaults".to_string(), WmaParams::default());
    for alpha_core in [0.05, 0.30] {
        run(
            format!("alpha_core_{alpha_core}"),
            WmaParams {
                alpha_core,
                ..WmaParams::default()
            },
        );
    }
    for phi in [0.1, 0.7] {
        run(
            format!("phi_{phi}"),
            WmaParams {
                phi,
                ..WmaParams::default()
            },
        );
    }
    for beta in [0.1, 0.5] {
        run(
            format!("beta_{beta}"),
            WmaParams {
                beta,
                ..WmaParams::default()
            },
        );
    }
    for history in [0.6, 1.0] {
        run(
            format!("history_{history}"),
            WmaParams {
                history,
                ..WmaParams::default()
            },
        );
    }
    g.finish();
}

fn bench_quantized_vs_float(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/quantized_table");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.bench_function("f64_reference", |b| {
        b.iter_batched(
            || (WmaScaler::new(6, 6, WmaParams::default()), Pcg32::seeded(BENCH_SEED)),
            |(mut s, mut rng)| {
                for _ in 0..1000 {
                    s.observe(rng.next_f64(), rng.next_f64());
                }
                s.argmax()
            },
            BatchSize::SmallInput,
        )
    });
    g.bench_function("u8_fixed_point", |b| {
        b.iter_batched(
            || (QuantizedWma::new(6, 6, WmaParams::default()), Pcg32::seeded(BENCH_SEED)),
            |(mut s, mut rng)| {
                for _ in 0..1000 {
                    s.observe(rng.next_f64(), rng.next_f64());
                }
                s.argmax()
            },
            BatchSize::SmallInput,
        )
    });
    g.finish();
}

fn bench_division_step(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/division_step");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for step in [0.01, 0.05, 0.10, 0.20] {
        g.bench_function(format!("step_{step}"), |b| {
            b.iter_batched(
                || {
                    DivisionController::new(
                        0.50,
                        DivisionParams {
                            step,
                            ..DivisionParams::default()
                        },
                    )
                },
                |mut ctl| {
                    // Converge on an asymmetric testbed and count moves.
                    for _ in 0..200 {
                        let r = ctl.share();
                        ctl.update(r * 4.5, (1.0 - r) * 1.0);
                    }
                    (ctl.share(), ctl.moves(), ctl.holds())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_safeguard(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/oscillation_safeguard");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for (label, safeguard) in [("on", true), ("off", false)] {
        g.bench_function(label, |b| {
            b.iter_batched(
                || {
                    DivisionController::new(
                        0.10,
                        DivisionParams {
                            safeguard,
                            ..DivisionParams::default()
                        },
                    )
                },
                |mut ctl| {
                    // Off-grid optimum at 12.5% — the paper's oscillation
                    // example.
                    for _ in 0..200 {
                        let r = ctl.share();
                        ctl.update(r * 7.0, (1.0 - r) * 1.0);
                    }
                    (ctl.moves(), ctl.holds())
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_overlap_sensitivity(c: &mut Criterion) {
    let mut g = c.benchmark_group("ablation/roofline_overlap");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    let work = WorkUnits::new(1e12, 5e11);
    for overlap in [0.0, 0.5, 0.85, 1.0] {
        let mut spec = geforce_8800_gtx();
        spec.overlap = overlap;
        g.bench_function(format!("overlap_{overlap}"), |b| {
            b.iter(|| {
                let mut acc = 0.0;
                for lvl in 0..6 {
                    let t = greengpu_hw::gpu_timing(
                        std::hint::black_box(&work),
                        spec.ops_per_sec(spec.core_levels_mhz[lvl]),
                        spec.peak_bytes_per_sec(),
                        spec.overlap,
                    );
                    acc += t.total_s;
                }
                acc
            })
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_wma_params,
    bench_quantized_vs_float,
    bench_division_step,
    bench_safeguard,
    bench_overlap_sensitivity
);
criterion_main!(benches);
