//! Bench: the functional Rust re-implementations of the Rodinia /
//! CUDA-SDK kernels themselves — one Criterion benchmark per workload's
//! hot loop, at the small presets (real computation, wall-clock timed).

use criterion::{criterion_group, criterion_main, BatchSize, Criterion, Throughput};
use greengpu_bench::BENCH_SEED;
use greengpu_workloads::registry;

fn bench_workload_iterations(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/iteration");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for name in registry::TABLE2_NAMES {
        // Per-iteration functional cost varies by orders of magnitude
        // across workloads; normalize reporting per element where sensible.
        g.throughput(Throughput::Elements(1));
        g.bench_function(name, |b| {
            b.iter_batched(
                || registry::by_name_small(name, BENCH_SEED).expect("registered"),
                |mut wl| {
                    wl.execute(0, 0.0);
                    wl.digest()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_divided_iterations(c: &mut Criterion) {
    // The split/merge path the division tier exercises: same work, half on
    // each "side".
    let mut g = c.benchmark_group("kernels/iteration_divided_50_50");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    for name in ["kmeans", "hotspot", "nbody", "streamcluster", "srad_v2", "QG"] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || registry::by_name_small(name, BENCH_SEED).expect("registered"),
                |mut wl| {
                    wl.execute(0, 0.5);
                    wl.digest()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_small_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("kernels/full_run_small");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(10);
    for name in ["kmeans", "bfs", "lud"] {
        g.bench_function(name, |b| {
            b.iter_batched(
                || registry::by_name_small(name, BENCH_SEED).expect("registered"),
                |mut wl| {
                    for i in 0..wl.iterations() {
                        wl.execute(i, 0.0);
                    }
                    wl.digest()
                },
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

criterion_group!(
    benches,
    bench_workload_iterations,
    bench_divided_iterations,
    bench_full_small_runs
);
criterion_main!(benches);
