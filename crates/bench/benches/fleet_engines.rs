//! Bench: fleet-engine throughput — serial vs event-driven vs parallel.
//!
//! Measures node-ticks per wall second (fleet size × control intervals
//! simulated, divided by wall time) at 100 / 1 000 / 10 000 nodes, and
//! writes the scaling table with speedups vs the serial oracle to
//! `results/BENCH_6.json`.
//!
//! Methodology, recorded in the JSON too:
//!
//! * The arrival stream is a *fixed fleet-wide* light trickle (2 jobs/s
//!   regardless of node count), so large fleets are mostly idle — the
//!   regime the discrete-event engine is built for ("idle nodes cost
//!   nothing"). A saturating load at 10k nodes would mean millions of
//!   arrival events per simulated hour, which no engine — serial
//!   included — can process in seconds; the interesting ratio is how
//!   much of the idle fleet's cost each engine avoids.
//! * Every engine simulates the same virtual horizon per scale, except
//!   the serial oracle at 10 000 nodes, which is timed over a shorter
//!   horizon and compared by *rate* (node-ticks/s is horizon-invariant
//!   for serial: its cost per tick is O(fleet), busy or not). The
//!   `horizon_s` field records what each engine actually ran.
//! * Engines are proven byte-identical by
//!   `crates/cluster/tests/engine_equivalence.rs`; this bench only
//!   measures speed, it does not re-verify outputs.

use greengpu_bench::BENCH_SEED;
use greengpu_cluster::{run_fleet, EngineKind, FleetConfig, Policy};
use greengpu_sim::{JsonValue, SimDuration};
use std::time::Instant;

/// One timed run: returns (wall seconds, node-ticks/s, completed jobs).
fn timed(nodes: usize, horizon_s: u64, engine: EngineKind) -> (f64, f64, usize) {
    let mut cfg = FleetConfig::homogeneous(
        nodes,
        0.8,
        Policy::LeastLoaded,
        SimDuration::from_secs(horizon_s),
        BENCH_SEED,
    )
    .with_engine(engine);
    // Fixed fleet-wide trickle: the mostly-idle regime (see module doc).
    cfg.arrivals.rate_per_s = 2.0;
    let start = Instant::now();
    let report = run_fleet(&cfg);
    let wall = start.elapsed().as_secs_f64();
    let node_ticks = (nodes as u64 * horizon_s) as f64;
    (wall, node_ticks / wall.max(1e-9), report.completed.len())
}

fn main() {
    // (fleet size, virtual horizon for event/parallel, for serial).
    // Serial is O(fleet × ticks) regardless of load, so at 10k nodes it
    // gets a 360 s slice of the hour and is compared by rate.
    let scales: &[(usize, u64, u64)] = &[(100, 3600, 3600), (1_000, 3600, 3600), (10_000, 3600, 360)];
    let engines = [
        EngineKind::Serial,
        EngineKind::EventDriven,
        EngineKind::Parallel { workers: 4 },
    ];
    let mut rows: Vec<JsonValue> = Vec::new();
    for &(nodes, horizon, serial_horizon) in scales {
        let mut serial_rate = 0.0;
        for engine in engines {
            let h = if engine == EngineKind::Serial {
                serial_horizon
            } else {
                horizon
            };
            let (wall, rate, completed) = timed(nodes, h, engine);
            if engine == EngineKind::Serial {
                serial_rate = rate;
            }
            let speedup = if serial_rate > 0.0 { rate / serial_rate } else { 1.0 };
            println!(
                "{:>6} nodes  {:<9} {:>6} s virtual  {:>8.3} s wall  {:>12.0} node-ticks/s  {:>6.2}x vs serial  ({} jobs)",
                nodes,
                engine.label(),
                h,
                wall,
                rate,
                speedup,
                completed
            );
            rows.push(JsonValue::Obj(vec![
                ("nodes".to_string(), JsonValue::usize(nodes)),
                ("engine".to_string(), JsonValue::str(engine.label())),
                ("horizon_s".to_string(), JsonValue::u64(h)),
                ("wall_s".to_string(), JsonValue::f64(wall)),
                ("node_ticks_per_s".to_string(), JsonValue::f64(rate)),
                ("speedup_vs_serial".to_string(), JsonValue::f64(speedup)),
                ("completed_jobs".to_string(), JsonValue::usize(completed)),
            ]));
        }
    }
    let doc = JsonValue::Obj(vec![
        ("bench".to_string(), JsonValue::str("fleet_engines")),
        ("seed".to_string(), JsonValue::u64(BENCH_SEED)),
        (
            "methodology".to_string(),
            JsonValue::str(
                "node_ticks_per_s = nodes * control intervals / wall seconds; fixed 2 jobs/s \
                 fleet-wide arrival trickle (mostly-idle regime); serial@10k timed over a 360 s \
                 slice and compared by rate since its per-tick cost is load-independent; engine \
                 outputs proven byte-identical by crates/cluster/tests/engine_equivalence.rs",
            ),
        ),
        ("workers_parallel".to_string(), JsonValue::usize(4)),
        ("rows".to_string(), JsonValue::Arr(rows)),
    ]);
    let out = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../results/BENCH_6.json");
    std::fs::write(&out, format!("{doc}\n")).expect("write results/BENCH_6.json");
    println!("wrote results/BENCH_6.json");
}
