//! Bench: Fig. 1 — per-domain frequency sweeps on nbody and streamcluster.
//!
//! Times (a) single pinned-clock runs at the extreme levels and (b) the
//! full 2×6-point sweep experiment that regenerates the figure.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use greengpu::baselines::run_pinned;
use greengpu_bench::{BENCH_SEED, EXPERIMENT_SAMPLES};
use greengpu_runtime::RunConfig;
use greengpu_workloads::nbody::NBody;
use greengpu_workloads::streamcluster::StreamCluster;

fn bench_pinned_runs(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/pinned_runs");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    for (label, core, mem) in [("peak", 5usize, 5usize), ("mem_floor", 5, 0), ("core_floor", 0, 5)] {
        g.bench_function(format!("nbody/{label}"), |b| {
            b.iter_batched(
                || NBody::paper(BENCH_SEED),
                |mut wl| run_pinned(&mut wl, core, mem, RunConfig::sweep()),
                BatchSize::SmallInput,
            )
        });
        g.bench_function(format!("streamcluster/{label}"), |b| {
            b.iter_batched(
                || StreamCluster::paper(BENCH_SEED),
                |mut wl| run_pinned(&mut wl, core, mem, RunConfig::sweep()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_figure(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig1/full_experiment");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    g.bench_function("regenerate", |b| {
        b.iter(|| greengpu_repro::fig1::run(std::hint::black_box(BENCH_SEED)))
    });
    g.finish();
}

criterion_group!(benches, bench_pinned_runs, bench_full_figure);
criterion_main!(benches);
