//! Bench: Fig. 2 — the static workload-division sweep for kmeans.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use greengpu::baselines::{run_static_division, static_search};
use greengpu_bench::{BENCH_SEED, EXPERIMENT_SAMPLES};
use greengpu_runtime::RunConfig;
use greengpu_workloads::kmeans::KMeans;

fn bench_single_points(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/static_points");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    for share in [0.0, 0.10, 0.50, 0.90] {
        g.bench_function(format!("kmeans_share_{:.0}pct", share * 100.0), |b| {
            b.iter_batched(
                || KMeans::paper(BENCH_SEED),
                |mut wl| run_static_division(&mut wl, share, RunConfig::sweep()),
                BatchSize::SmallInput,
            )
        });
    }
    g.finish();
}

fn bench_full_sweep(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig2/full_sweep");
    g.warm_up_time(std::time::Duration::from_secs(1));
    g.measurement_time(std::time::Duration::from_secs(2));
    g.sample_size(EXPERIMENT_SAMPLES);
    g.bench_function("ten_point_search", |b| {
        b.iter(|| static_search(|| Box::new(KMeans::paper(BENCH_SEED)), 0.10, 0.90))
    });
    g.finish();
}

criterion_group!(benches, bench_single_points, bench_full_sweep);
criterion_main!(benches);
