//! Property tests pinning the [`FreqPolicy`] contract for every shipped
//! policy: decisions are in range, respect the feasible mask exactly,
//! and are deterministic under a fixed seed.

use greengpu_policy::{
    Contextual, DeadlineParams, DeadlinePolicy, Exp3Params, Exp3Policy, FreqPolicy, LossParams, PairModel,
    PhaseDetectorParams, SwitchingParams, UcbParams, UcbPolicy,
};
use greengpu_sim::SplitMix64;
use proptest::prelude::*;

/// The phase-conditioned exp3 wrapper, seeded one inner per potential
/// phase like the `PolicySpec` builder does.
fn ctx_exp3(n_core: usize, n_mem: usize, seed: u64) -> Contextual<Exp3Policy> {
    let mut root = SplitMix64::new(seed);
    let max = PhaseDetectorParams::default().max_phases;
    let seeds: Vec<u64> = (0..max).map(|_| root.next_u64()).collect();
    Contextual::new(
        n_core,
        n_mem,
        PhaseDetectorParams::default(),
        SwitchingParams::default(),
        LossParams::default(),
        |k| Exp3Policy::new(n_core, n_mem, Exp3Params::default(), seeds[k]),
    )
    .expect("valid contextual params")
}

/// The phase-conditioned UCB wrapper (seedless inners).
fn ctx_ucb(n_core: usize, n_mem: usize) -> Contextual<UcbPolicy> {
    Contextual::new(
        n_core,
        n_mem,
        PhaseDetectorParams::default(),
        SwitchingParams::default(),
        LossParams::default(),
        |_| UcbPolicy::new(n_core, n_mem, UcbParams::default()),
    )
    .expect("valid contextual params")
}

/// Builds one of each policy family over an `n_core × n_mem` grid.
fn all_policies(n_core: usize, n_mem: usize, seed: u64) -> Vec<Box<dyn FreqPolicy>> {
    let time_s: Vec<f64> = (0..n_core * n_mem)
        .map(|k| 2.0 - k as f64 / (n_core * n_mem) as f64)
        .collect();
    let energy_j: Vec<f64> = (0..n_core * n_mem).map(|k| 50.0 + (k % 7) as f64 * 10.0).collect();
    let model = PairModel::from_grids(n_core, n_mem, time_s, energy_j).expect("valid grids");
    vec![
        Box::new(Exp3Policy::new(n_core, n_mem, Exp3Params::default(), seed)),
        Box::new(UcbPolicy::new(n_core, n_mem, UcbParams::default())),
        Box::new(DeadlinePolicy::new(
            model,
            DeadlineParams {
                time_budget_s: 1.6,
                ..DeadlineParams::default()
            },
        )),
        Box::new(ctx_exp3(n_core, n_mem, seed)),
        Box::new(ctx_ucb(n_core, n_mem)),
    ]
}

/// Decodes a `u32` into a feasibility predicate over the grid: bit `k`
/// of the (wrapped) word masks pair `k` in row-major order.
fn mask_from_bits(bits: u32, n_mem: usize) -> impl Fn(usize, usize) -> bool {
    move |i, j| bits & (1 << ((i * n_mem + j) % 32)) != 0
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Contract items 1 + 2: every decision is in range, and when the
    /// feasible set is non-empty the decision satisfies the mask; an
    /// empty set degrades to (0, 0) and is counted in the telemetry.
    #[test]
    fn decisions_are_in_range_and_respect_the_mask(
        seed in any::<u64>(),
        n_core in 2usize..6,
        n_mem in 2usize..6,
        obs in proptest::collection::vec((0.0f64..1.5, 0.0f64..1.5, any::<u32>()), 1..40),
    ) {
        for mut policy in all_policies(n_core, n_mem, seed) {
            let mut empties = 0u64;
            for &(u_core, u_mem, bits) in &obs {
                let feasible = mask_from_bits(bits, n_mem);
                let nonempty = (0..n_core).any(|i| (0..n_mem).any(|j| feasible(i, j)));
                let (i, j) = policy.decide(u_core, u_mem, &feasible);
                prop_assert!(i < n_core && j < n_mem,
                    "{}: out-of-range ({i},{j}) on {n_core}x{n_mem}", policy.name());
                if nonempty {
                    prop_assert!(feasible(i, j),
                        "{}: ({i},{j}) escaped the mask", policy.name());
                } else {
                    prop_assert_eq!((i, j), (0, 0));
                    empties += 1;
                }
            }
            prop_assert_eq!(policy.telemetry().empty_mask_fallbacks, empties);
            let (pi, pj) = policy.preferred();
            prop_assert!(pi < n_core && pj < n_mem);
        }
    }

    /// Contract item 3: two instances built with the same parameters and
    /// seed produce identical decision sequences (and telemetry) for an
    /// identical observation sequence.
    #[test]
    fn policies_are_deterministic_under_a_fixed_seed(
        seed in any::<u64>(),
        obs in proptest::collection::vec((0.0f64..1.2, 0.0f64..1.2, any::<u32>()), 1..60),
    ) {
        let lhs = all_policies(6, 6, seed);
        let rhs = all_policies(6, 6, seed);
        for (mut a, mut b) in lhs.into_iter().zip(rhs) {
            for &(u_core, u_mem, bits) in &obs {
                // Bias toward non-trivial masks but keep empties reachable.
                let feasible = mask_from_bits(bits | 1, 6);
                prop_assert_eq!(
                    a.decide(u_core, u_mem, &feasible),
                    b.decide(u_core, u_mem, &feasible),
                    "{} diverged", a.name()
                );
            }
            prop_assert_eq!(a.telemetry(), b.telemetry());
        }
    }

    /// Contract item 4: interleaved non-finite observations never derail
    /// a policy — replaying the same sequence stays deterministic, the
    /// rejections are counted, and decisions stay masked.
    #[test]
    fn garbage_observations_are_rejected_deterministically(
        seed in any::<u64>(),
        obs in proptest::collection::vec((0.0f64..1.0, any::<bool>(), any::<u32>()), 1..40),
    ) {
        let lhs = all_policies(6, 6, seed);
        let rhs = all_policies(6, 6, seed);
        for (mut a, mut b) in lhs.into_iter().zip(rhs) {
            let mut bad = 0u64;
            for &(u, poison, bits) in &obs {
                let u_core = if poison { f64::NAN } else { u };
                if poison {
                    bad += 1;
                }
                let feasible = mask_from_bits(bits | 1, 6);
                let pa = a.decide(u_core, u, &feasible);
                prop_assert_eq!(pa, b.decide(u_core, u, &feasible));
                prop_assert!(feasible(pa.0, pa.1));
            }
            prop_assert_eq!(a.telemetry().invalid_inputs, bad, "{}", a.name());
        }
    }

    /// Contextual checkpoint round trips are bit-exact at any split
    /// point: a fresh same-seed wrapper restored from the donor's
    /// snapshot replays its future decision-for-decision — detector
    /// window, phase library, per-phase inners, and the enforced pair
    /// all survive serialization.
    #[test]
    fn contextual_checkpoint_round_trip_is_bit_exact(
        seed in any::<u64>(),
        split in 1usize..120,
        reps in 4usize..20,
    ) {
        let total = 160usize;
        let split = split.min(total - 1);
        let wave = |k: usize| if (k / reps).is_multiple_of(2) { (0.85, 0.25) } else { (0.2, 0.8) };
        let mut donors: Vec<Box<dyn FreqPolicy>> =
            vec![Box::new(ctx_exp3(6, 6, seed)), Box::new(ctx_ucb(6, 6))];
        let mut restored: Vec<Box<dyn FreqPolicy>> =
            vec![Box::new(ctx_exp3(6, 6, seed)), Box::new(ctx_ucb(6, 6))];
        for (a, b) in donors.iter_mut().zip(restored.iter_mut()) {
            for k in 0..split {
                let (uc, um) = wave(k);
                a.decide(uc, um, &|_, _| true);
            }
            let snap = a.snapshot();
            b.restore(&snap).expect("restore own snapshot");
            prop_assert_eq!(snap.to_string(), b.snapshot().to_string(), "{} restore not exact", a.name());
            for k in split..total {
                let (uc, um) = wave(k);
                prop_assert_eq!(
                    a.decide(uc, um, &|_, _| true),
                    b.decide(uc, um, &|_, _| true),
                    "{} diverged at interval {}", a.name(), k
                );
            }
            prop_assert_eq!(a.snapshot().to_string(), b.snapshot().to_string(), "{} end state", a.name());
        }
    }

    /// `reset` restores the initial state exactly: a reset policy replays
    /// a fresh instance decision-for-decision.
    #[test]
    fn reset_replays_like_a_fresh_instance(
        seed in any::<u64>(),
        warmup in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 0..20),
        obs in proptest::collection::vec((0.0f64..1.0, 0.0f64..1.0), 1..30),
    ) {
        let used = all_policies(6, 6, seed);
        let fresh = all_policies(6, 6, seed);
        for (mut a, mut b) in used.into_iter().zip(fresh) {
            for &(u_core, u_mem) in &warmup {
                a.decide(u_core, u_mem, &|_, _| true);
            }
            a.reset();
            for &(u_core, u_mem) in &obs {
                prop_assert_eq!(
                    a.decide(u_core, u_mem, &|_, _| true),
                    b.decide(u_core, u_mem, &|_, _| true),
                    "{} reset != fresh", a.name()
                );
            }
        }
    }
}
