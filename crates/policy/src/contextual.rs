//! Phase-conditioned ("contextual") wrapper around any bandit policy.
//!
//! A context-free bandit on a phase-cycling workload (training's
//! forward/backward/optimizer rotation) is chasing a moving target: each
//! phase has a different sweet-spot pair, so the learner keeps getting
//! dragged between fixed points and converges, at best, to the
//! best-*static* pair. [`Contextual`] closes that gap the standard
//! contextual-bandit way: an online [`PhaseDetector`] maps the
//! utilization stream to a small discrete [`PhaseId`], and one
//! independent inner policy per phase learns that phase's optimum. Each
//! inner sees only its own phase's intervals, so from its point of view
//! the environment is (near-)stationary again.
//!
//! Switching-penalty accounting is *shared*: the wrapper owns the
//! globally enforced pair, and a reclock is charged whenever the
//! enforced pair changes — including across a phase hand-off from one
//! inner to another. The inners still apply their own switching
//! machinery within their phase; the wrapper's [`DecisionTracker`] is
//! the experimenter's view of the whole trajectory (and is what the
//! training experiment's oracle-regret columns report).
//!
//! Like the inner bandits, the wrapper advances state on every valid
//! decision, so it keeps the trait's `None` decision fingerprint and is
//! never parked by the event-driven fleet engine.

use crate::bandit::{dist_norm, SwitchingParams};
use crate::loss::{LossModel, LossParams};
use crate::telemetry::{DecisionTracker, PolicyTelemetry};
use crate::{hold_masked, snap, FreqPolicy};
use greengpu_phase::{PhaseDetector, PhaseDetectorParams};
use greengpu_sim::JsonValue;

/// One inner policy per detected phase, with shared switching-penalty
/// accounting. `P` is typically [`Exp3Policy`] or [`UcbPolicy`];
/// `Clone` is required so `restore` can validate every layer before
/// mutating any.
///
/// [`Exp3Policy`]: crate::Exp3Policy
/// [`UcbPolicy`]: crate::UcbPolicy
#[derive(Debug, Clone)]
pub struct Contextual<P: FreqPolicy + Clone + 'static> {
    name: String,
    detector: PhaseDetector,
    /// One inner per potential [`PhaseId`], pre-built so phase discovery
    /// never allocates mid-run (index = `PhaseId::index()`).
    inners: Vec<P>,
    switching: SwitchingParams,
    n_core: usize,
    n_mem: usize,
    /// Per-core-level capacity fractions (`level/peak`); empty when
    /// clock-invariant detection is off. See [`Contextual::with_level_caps`].
    core_caps: Vec<f64>,
    /// Per-mem-level capacity fractions, paired with `core_caps`.
    mem_caps: Vec<f64>,
    /// The globally enforced pair (shared across phase hand-offs).
    current: Option<(usize, usize)>,
    tracker: DecisionTracker,
}

/// Validates one level axis and reduces it to capacity fractions
/// (`level/peak`, peak = the last, highest level).
fn caps_from(levels: &[f64], n: usize, what: &str) -> Result<Vec<f64>, String> {
    if n == 0 || levels.len() != n {
        return Err(format!("{what} levels has {} entries, grid expects {n}", levels.len()));
    }
    if !levels.iter().all(|v| v.is_finite() && *v > 0.0) || levels.windows(2).any(|w| w[0] > w[1]) {
        return Err(format!("{what} levels must be positive, finite, and ascending"));
    }
    let peak = levels.last().copied().unwrap_or(1.0);
    Ok(levels.iter().map(|v| v / peak).collect())
}

impl<P: FreqPolicy + Clone + 'static> Contextual<P> {
    /// Builds the wrapper: `make_inner(k)` constructs the inner policy
    /// for potential phase `k` (callers derive per-phase seeds there).
    /// Every inner must share the wrapper's `n_core × n_mem` grid.
    pub fn new<F>(
        n_core: usize,
        n_mem: usize,
        detector_params: PhaseDetectorParams,
        switching: SwitchingParams,
        loss: LossParams,
        mut make_inner: F,
    ) -> Result<Self, String>
    where
        F: FnMut(usize) -> P,
    {
        switching.try_validate()?;
        loss.try_validate()?;
        let detector = PhaseDetector::new(detector_params)?;
        let inners: Vec<P> = (0..detector_params.max_phases).map(&mut make_inner).collect();
        for (k, inner) in inners.iter().enumerate() {
            if inner.shape() != (n_core, n_mem) {
                return Err(format!(
                    "inner {k} has shape {:?}, wrapper expects ({n_core}, {n_mem})",
                    inner.shape()
                ));
            }
        }
        let name = inners
            .first()
            .map_or_else(|| "ctx".to_string(), |p| format!("ctx-{}", p.name()));
        Ok(Contextual {
            name,
            detector,
            inners,
            switching,
            n_core,
            n_mem,
            core_caps: Vec::new(),
            mem_caps: Vec::new(),
            current: None,
            tracker: DecisionTracker::new(LossModel::new(n_core, n_mem, loss)),
        })
    }

    /// Overrides the display name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Enables clock-invariant phase detection (builder style).
    ///
    /// Utilization is *measured at the applied clocks* (`u = t_busy /
    /// t_wall`, both at the current pair), so every reclock moves the
    /// raw point even when the workload's phase is unchanged — a bandit
    /// rotating pairs during exploration scrambles the detector's input
    /// into spurious phases. Given the per-level clock values (any unit,
    /// ascending, one per grid level), the wrapper rescales each
    /// observation by the applied level's capacity fraction
    /// (`u·f/f_peak = t_busy_at_peak / t_wall`) and then reduces the
    /// pair to demand *shares* — dividing out `t_wall`, the one factor
    /// the rescale cannot cancel. The detector then sees the phase's
    /// compute/memory demand ratio, a pure function of the workload.
    /// The inners and the telemetry still receive the raw utilizations;
    /// the fractions are construction config and are excluded from
    /// snapshots like every other parameter.
    pub fn with_level_caps(mut self, core_levels: &[f64], mem_levels: &[f64]) -> Result<Self, String> {
        self.core_caps = caps_from(core_levels, self.n_core, "core")?;
        self.mem_caps = caps_from(mem_levels, self.n_mem, "mem")?;
        Ok(self)
    }

    /// The wrapped phase detector (inspection/tests).
    pub fn detector(&self) -> &PhaseDetector {
        &self.detector
    }

    /// The inner policy for potential phase `k` (inspection/tests).
    pub fn inner(&self, k: usize) -> Option<&P> {
        self.inners.get(k)
    }
}

impl<P: FreqPolicy + Clone + 'static> FreqPolicy for Contextual<P> {
    fn name(&self) -> &str {
        &self.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.n_core, self.n_mem)
    }

    fn decide(&mut self, u_core: f64, u_mem: f64, feasible: &dyn Fn(usize, usize) -> bool) -> (usize, usize) {
        if !(u_core.is_finite() && u_mem.is_finite()) {
            // Hold-on-invalid: neither the detector nor any inner learns
            // from garbage, and no phase routing happens.
            self.tracker.note_invalid();
            return match hold_masked(self.current.unwrap_or((0, 0)), self.n_core, self.n_mem, feasible) {
                Some(pair) => pair,
                None => {
                    self.tracker.note_empty_mask();
                    (0, 0)
                }
            };
        }
        let any_feasible = (0..self.n_core).any(|i| (0..self.n_mem).any(|j| feasible(i, j)));
        if !any_feasible {
            // Degrade like the inners would, but before touching any
            // state: detector and inner positions only advance on
            // intervals that can actually be acted on.
            self.tracker.note_empty_mask();
            return (0, 0);
        }
        // With level caps on, hand the detector the peak-equivalent
        // demand shares instead of the raw (clock-dependent) point. The
        // pair that produced this observation is the one enforced *last*
        // interval; before any decision the platform sits at its floor
        // levels, matching `preferred()`'s default.
        let (mut dc, mut dm) = (u_core, u_mem);
        if !self.core_caps.is_empty() {
            let (i, j) = self.current.unwrap_or((0, 0));
            dc = u_core * self.core_caps[i];
            dm = u_mem * self.mem_caps[j];
            let total = dc + dm;
            if total > 1e-12 {
                dc /= total;
                dm /= total;
            }
        }
        let phase = self.detector.observe(dc, dm);
        // Route the interval to the live phase's learner only.
        let idx = phase.index().min(self.inners.len() - 1);
        let pair = self.inners[idx].decide(u_core, u_mem, feasible);
        // Shared switching accounting against the *global* trajectory: a
        // phase hand-off that lands on a different pair is a reclock
        // even if both inners are internally steady.
        let penalty = match self.current {
            Some(cur) if cur != pair => self.switching.switch_cost * dist_norm(pair, cur, self.n_core, self.n_mem),
            _ => 0.0,
        };
        self.tracker.record(u_core, u_mem, pair, penalty);
        self.current = Some(pair);
        pair
    }

    fn preferred(&self) -> (usize, usize) {
        self.current.unwrap_or((0, 0))
    }

    fn telemetry(&self) -> &PolicyTelemetry {
        self.tracker.telemetry()
    }

    fn reset(&mut self) {
        self.detector.reset();
        for inner in &mut self.inners {
            inner.reset();
        }
        self.current = None;
        self.tracker.reset();
    }

    fn snapshot(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("detector".to_string(), self.detector.snapshot()),
            (
                "inners".to_string(),
                JsonValue::Arr(self.inners.iter().map(|p| p.snapshot()).collect()),
            ),
            ("current".to_string(), snap::pair(self.current)),
        ])
    }

    fn restore(&mut self, state: &JsonValue) -> Result<(), String> {
        // Validate every layer against clones before mutating anything:
        // a failed restore leaves the whole wrapper untouched.
        let inner_states = snap::field(state, "inners")?
            .as_arr()
            .ok_or_else(|| "inners must be an array".to_string())?;
        if inner_states.len() != self.inners.len() {
            return Err(format!(
                "inners has {} entries, expected {}",
                inner_states.len(),
                self.inners.len()
            ));
        }
        let mut detector = self.detector.clone();
        detector
            .restore(snap::field(state, "detector")?)
            .map_err(|e| format!("detector: {e}"))?;
        let mut inners = self.inners.clone();
        for (k, (inner, s)) in inners.iter_mut().zip(inner_states).enumerate() {
            inner.restore(s).map_err(|e| format!("inner {k}: {e}"))?;
        }
        let current = snap::parse_pair(snap::field(state, "current")?, "current", self.n_core, self.n_mem)?;
        self.detector = detector;
        self.inners = inners;
        self.current = current;
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bandit::{Exp3Params, Exp3Policy, UcbParams, UcbPolicy};
    use greengpu_sim::SplitMix64;

    const ALL: fn(usize, usize) -> bool = |_, _| true;

    fn ctx_exp3(seed: u64) -> Contextual<Exp3Policy> {
        let mut root = SplitMix64::new(seed);
        let seeds: Vec<u64> = (0..PhaseDetectorParams::default().max_phases)
            .map(|_| root.next_u64())
            .collect();
        Contextual::new(
            6,
            6,
            PhaseDetectorParams::default(),
            SwitchingParams::default(),
            LossParams::default(),
            |k| Exp3Policy::new(6, 6, Exp3Params::default(), seeds[k]),
        )
        .expect("valid contextual params")
    }

    fn ctx_ucb() -> Contextual<UcbPolicy> {
        Contextual::new(
            6,
            6,
            PhaseDetectorParams::default(),
            SwitchingParams::default(),
            LossParams::default(),
            |_| UcbPolicy::new(6, 6, UcbParams::default()),
        )
        .expect("valid contextual params")
    }

    /// A two-phase utilization square wave: `reps` intervals per phase.
    fn square_wave(k: usize, reps: usize) -> (f64, f64) {
        if (k / reps).is_multiple_of(2) {
            (0.85, 0.25)
        } else {
            (0.2, 0.8)
        }
    }

    #[test]
    fn names_derive_from_the_inner() {
        assert_eq!(ctx_exp3(1).name(), "ctx-exp3");
        assert_eq!(ctx_ucb().name(), "ctx-ucb");
    }

    #[test]
    fn is_deterministic_under_a_seed() {
        let mut a = ctx_exp3(7);
        let mut b = ctx_exp3(7);
        for k in 0..300 {
            let (uc, um) = square_wave(k, 10);
            assert_eq!(a.decide(uc, um, &ALL), b.decide(uc, um, &ALL));
        }
        assert_eq!(a.snapshot().to_string(), b.snapshot().to_string());
    }

    #[test]
    fn phases_route_to_distinct_inners() {
        let mut p = ctx_ucb();
        for k in 0..120 {
            let (uc, um) = square_wave(k, 12);
            p.decide(uc, um, &ALL);
        }
        assert!(
            p.detector().n_phases() >= 2,
            "detector found {}",
            p.detector().n_phases()
        );
        let pulls = |k: usize| -> u64 {
            (0..6)
                .flat_map(|i| (0..6).map(move |j| (i, j)))
                .map(|(i, j)| p.inner(k).map_or(0, |q| q.count(i, j)))
                .sum()
        };
        assert!(pulls(0) > 0 && pulls(1) > 0, "both inners must see intervals");
        assert!(pulls(2) == 0, "undiscovered phases must stay untouched");
    }

    #[test]
    fn contextual_beats_context_free_on_phase_cycling_input() {
        // The design claim, at policy level: with *identical* inner
        // parameters the phase-conditioned UCB must end with strictly
        // lower oracle-regret than the context-free one. Selection is
        // left unshaped by switching costs (`nosw`) on both sides so
        // each learner converges to the argmin of the means it
        // observes — the context-free learner can only reach the best
        // arm of the *mixed* stream, while the per-phase inners reach
        // each phase's sweet spot. The wrapper's penalty accounting
        // is likewise disabled so both sides charge identically; the
        // horizon amortizes the doubled cold start (each discovered
        // phase's inner runs its own 36-arm forced exploration)
        // before the per-interval advantage pays it back.
        let params = UcbParams {
            switching: SwitchingParams::none(),
            ..UcbParams::default()
        };
        let mut ctx = Contextual::new(
            6,
            6,
            PhaseDetectorParams::default(),
            SwitchingParams::none(),
            LossParams::default(),
            |_| UcbPolicy::new(6, 6, params),
        )
        .expect("valid contextual params");
        let mut flat = UcbPolicy::new(6, 6, params);
        for k in 0..1500 {
            let (uc, um) = square_wave(k, 20);
            ctx.decide(uc, um, &ALL);
            flat.decide(uc, um, &ALL);
        }
        let (r_ctx, r_flat) = (ctx.telemetry().oracle_regret, flat.telemetry().oracle_regret);
        assert!(r_ctx < r_flat, "contextual {r_ctx} vs context-free {r_flat}");
    }

    #[test]
    fn level_caps_make_detection_clock_invariant() {
        // Roofline toy: a fixed demand `(tc, tm)` at pair `(i, j)` runs
        // for `wall = max(tc/cap_c, tm/cap_m)` and measures
        // `u = busy/wall` — the raw point moves with every reclock the
        // bandit makes while exploring. With level caps the wrapper
        // reduces each observation to demand shares, so the detector
        // must see exactly the two true phases and flip only when the
        // workload does.
        let levels_c = [296.0, 352.0, 408.0, 464.0, 520.0, 576.0];
        let levels_m = [500.0, 580.0, 660.0, 740.0, 820.0, 900.0];
        let caps_c: Vec<f64> = levels_c.iter().map(|v| v / 576.0).collect();
        let caps_m: Vec<f64> = levels_m.iter().map(|v| v / 900.0).collect();
        let params = UcbParams {
            switching: SwitchingParams::none(),
            ..UcbParams::default()
        };
        let mut p = Contextual::new(
            6,
            6,
            PhaseDetectorParams::default(),
            SwitchingParams::none(),
            LossParams::default(),
            |_| UcbPolicy::new(6, 6, params),
        )
        .expect("valid contextual params")
        .with_level_caps(&levels_c, &levels_m)
        .expect("valid level tables");
        let mut pair = (0, 0);
        let reps = 25;
        let total = 400;
        for k in 0..total {
            let (tc, tm) = if (k / reps) % 2 == 0 { (0.8, 0.3) } else { (0.2, 0.7) };
            let (bc, bm) = (tc / caps_c[pair.0], tm / caps_m[pair.1]);
            let wall = bc.max(bm);
            pair = p.decide(bc / wall, bm / wall, &ALL);
        }
        assert_eq!(p.detector().n_phases(), 2, "clock churn must not mint phases");
        let flips = (total / reps) as u64;
        assert!(
            p.detector().changes() <= flips,
            "{} phase changes for {flips} true flips",
            p.detector().changes()
        );
    }

    #[test]
    fn level_caps_reject_bad_tables() {
        let good = [1.0, 2.0, 3.0, 4.0, 5.0, 6.0];
        let err = ctx_ucb().with_level_caps(&[1.0, 2.0], &good).unwrap_err();
        assert!(err.contains("core levels"), "{err}");
        let descending = [6.0, 5.0, 4.0, 3.0, 2.0, 1.0];
        let err = ctx_ucb().with_level_caps(&good, &descending).unwrap_err();
        assert!(err.contains("mem levels"), "{err}");
        let err = ctx_ucb()
            .with_level_caps(&good, &[1.0, 2.0, 0.0, 4.0, 5.0, 6.0])
            .unwrap_err();
        assert!(err.contains("positive"), "{err}");
    }

    #[test]
    fn respects_the_mask_and_degrades_on_empty() {
        let mut p = ctx_exp3(5);
        for k in 0..60 {
            let (uc, um) = square_wave(k, 10);
            let (i, j) = p.decide(uc, um, &|i, j| i + j <= 4);
            assert!(i + j <= 4, "escaped mask: ({i},{j})");
        }
        let ticks = p.detector().ticks();
        assert_eq!(p.decide(0.5, 0.5, &|_, _| false), (0, 0));
        assert_eq!(p.telemetry().empty_mask_fallbacks, 1);
        assert_eq!(p.detector().ticks(), ticks, "empty mask must not advance the detector");
    }

    #[test]
    fn rejects_nan_without_touching_detector_or_inners() {
        let mut a = ctx_exp3(9);
        let mut b = ctx_exp3(9);
        for k in 0..40 {
            let (uc, um) = square_wave(k, 10);
            a.decide(uc, um, &ALL);
            b.decide(uc, um, &ALL);
            if k % 5 == 0 {
                let held = b.decide(f64::NAN, 0.5, &ALL);
                assert_eq!(held, b.preferred());
            }
        }
        assert_eq!(a.snapshot().to_string(), b.snapshot().to_string());
        assert_eq!(b.telemetry().invalid_inputs, 8);
    }

    #[test]
    fn checkpoint_round_trip_is_bit_exact() {
        let mut a = ctx_exp3(11);
        for k in 0..90 {
            let (uc, um) = square_wave(k, 9);
            a.decide(uc, um, &ALL);
        }
        let snap_a = a.snapshot();
        let mut b = ctx_exp3(11);
        b.restore(&snap_a).expect("restore own snapshot");
        assert_eq!(snap_a.to_string(), b.snapshot().to_string());
        for k in 90..240 {
            let (uc, um) = square_wave(k, 9);
            assert_eq!(a.decide(uc, um, &ALL), b.decide(uc, um, &ALL), "interval {k}");
        }
        assert_eq!(a.snapshot().to_string(), b.snapshot().to_string());
    }

    #[test]
    fn failed_restore_leaves_state_untouched() {
        let mut p = ctx_ucb();
        for k in 0..50 {
            let (uc, um) = square_wave(k, 10);
            p.decide(uc, um, &ALL);
        }
        let before = p.snapshot();
        // Tamper with one inner's counts so its own restore fails, after
        // the detector already validated — nothing may change.
        let mut bad = before.clone();
        if let JsonValue::Obj(fields) = &mut bad {
            for (k, v) in fields.iter_mut() {
                if k == "inners" {
                    if let JsonValue::Arr(arr) = v {
                        if let JsonValue::Obj(inner) = &mut arr[1] {
                            for (ik, iv) in inner.iter_mut() {
                                if ik == "t" {
                                    *iv = JsonValue::u64(9999);
                                }
                            }
                        }
                    }
                }
            }
        }
        let err = p.restore(&bad).unwrap_err();
        assert!(err.contains("inner 1"), "{err}");
        assert_eq!(p.snapshot().to_string(), before.to_string());
    }

    #[test]
    fn no_decision_fingerprint() {
        let mut p = ctx_exp3(1);
        assert_eq!(p.decision_fingerprint(), None);
        p.decide(0.5, 0.5, &ALL);
        assert_eq!(p.decision_fingerprint(), None);
    }

    #[test]
    fn mismatched_inner_shape_is_rejected() {
        let err = Contextual::new(
            6,
            6,
            PhaseDetectorParams::default(),
            SwitchingParams::default(),
            LossParams::default(),
            |_| UcbPolicy::new(4, 6, UcbParams::default()),
        )
        .map(|_| ())
        .unwrap_err();
        assert!(err.contains("shape"), "{err}");
    }
}
