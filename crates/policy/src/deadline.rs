//! Deadline-aware frequency selection: minimize predicted energy subject
//! to a per-interval time budget.
//!
//! In the spirit of *A Data-Driven Frequency Scaling Approach for
//! Deadline-aware Energy Efficient Scheduling on GPUs* (arXiv:2004.08177):
//! instead of learning online from utilization feedback, the selector
//! consults a calibrated [`PairModel`] — predicted execution time and
//! energy of a representative work unit at every `(core, mem)` pair —
//! and picks the cheapest pair whose predicted time fits the budget.
//! When no feasible pair fits, it degrades to the *fastest* feasible
//! pair (best effort) and counts the miss.
//!
//! The model comes from the same roofline-with-overlap machinery in
//! `greengpu-hw` that drives the simulator ([`PairModel::from_work`]),
//! or from externally measured grids ([`PairModel::from_grids`]) as the
//! cluster tier's service profiles provide.

use crate::loss::{LossModel, LossParams};
use crate::telemetry::{DecisionTracker, PolicyTelemetry};
use crate::{hold_masked, snap, FreqPolicy};
use greengpu_hw::gpu::GpuSpec;
use greengpu_hw::perf::{gpu_timing, WorkUnits};
use greengpu_sim::JsonValue;

/// Predicted per-pair execution time and energy of a representative work
/// unit over the `N×M` frequency-pair grid.
#[derive(Debug, Clone)]
pub struct PairModel {
    n_core: usize,
    n_mem: usize,
    /// Row-major predicted time, seconds.
    time_s: Vec<f64>,
    /// Row-major predicted energy, joules.
    energy_j: Vec<f64>,
}

impl PairModel {
    /// Builds a model from externally supplied grids (row-major
    /// `n_core × n_mem`), e.g. averaged cluster service profiles.
    pub fn from_grids(n_core: usize, n_mem: usize, time_s: Vec<f64>, energy_j: Vec<f64>) -> Result<Self, String> {
        if n_core < 2 || n_mem < 2 {
            return Err(format!("grid must be at least 2x2, got {n_core}x{n_mem}"));
        }
        if time_s.len() != n_core * n_mem {
            return Err(format!(
                "time_s must have {} entries, got {}",
                n_core * n_mem,
                time_s.len()
            ));
        }
        if energy_j.len() != n_core * n_mem {
            return Err(format!(
                "energy_j must have {} entries, got {}",
                n_core * n_mem,
                energy_j.len()
            ));
        }
        if let Some(v) = time_s.iter().find(|v| !v.is_finite() || **v < 0.0) {
            return Err(format!("time_s entries must be finite and >= 0, got {v}"));
        }
        if let Some(v) = energy_j.iter().find(|v| !v.is_finite() || **v < 0.0) {
            return Err(format!("energy_j entries must be finite and >= 0, got {v}"));
        }
        Ok(PairModel {
            n_core,
            n_mem,
            time_s,
            energy_j,
        })
    }

    /// Predicts the grid for `work` on `spec` with the same
    /// roofline-with-overlap timing and activity-dependent power model
    /// the simulator runs, so predictions and simulation agree by
    /// construction.
    pub fn from_work(spec: &GpuSpec, work: &WorkUnits) -> Self {
        let n_core = spec.core_levels_mhz.len();
        let n_mem = spec.mem_levels_mhz.len();
        let mut time_s = Vec::with_capacity(n_core * n_mem);
        let mut energy_j = Vec::with_capacity(n_core * n_mem);
        for i in 0..n_core {
            for j in 0..n_mem {
                let t = gpu_timing(
                    work,
                    spec.ops_per_sec(spec.core_levels_mhz[i]),
                    spec.bytes_per_sec(spec.mem_levels_mhz[j]),
                    spec.overlap,
                );
                let p = spec.power_at_levels_w(i, j, t.u_core, t.u_mem);
                time_s.push(t.total_s);
                energy_j.push(p * t.total_s);
            }
        }
        PairModel {
            n_core,
            n_mem,
            time_s,
            energy_j,
        }
    }

    /// Grid shape `(n_core, n_mem)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.n_core, self.n_mem)
    }

    /// Predicted time of pair `(i, j)`, seconds.
    pub fn time_s(&self, i: usize, j: usize) -> f64 {
        self.time_s[i * self.n_mem + j]
    }

    /// Predicted energy of pair `(i, j)`, joules.
    pub fn energy_j(&self, i: usize, j: usize) -> f64 {
        self.energy_j[i * self.n_mem + j]
    }

    /// Predicted time at the peak pair — the tightest budget any pair
    /// can meet; a useful anchor for choosing `time_budget_s`.
    pub fn peak_time_s(&self) -> f64 {
        self.time_s(self.n_core - 1, self.n_mem - 1)
    }
}

/// Deadline-selector tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeadlineParams {
    /// Per-interval time budget for the representative work unit,
    /// seconds.
    pub time_budget_s: f64,
    /// Budget multiplier (> 0): the effective budget is
    /// `time_budget_s · slack`. 1.0 takes the budget at face value;
    /// the `policies` experiment sweeps this to trade energy for margin.
    pub slack: f64,
    /// Loss shaping for telemetry/regret accounting (shared scale with
    /// every other policy).
    pub loss: LossParams,
}

impl Default for DeadlineParams {
    fn default() -> Self {
        DeadlineParams {
            time_budget_s: 1.0,
            slack: 1.0,
            loss: LossParams::default(),
        }
    }
}

impl DeadlineParams {
    /// Non-panicking range check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        if !self.time_budget_s.is_finite() || self.time_budget_s <= 0.0 {
            return Err(format!(
                "time_budget_s must be finite and > 0, got {}",
                self.time_budget_s
            ));
        }
        if !self.slack.is_finite() || self.slack <= 0.0 {
            return Err(format!("slack must be finite and > 0, got {}", self.slack));
        }
        self.loss.try_validate()
    }
}

/// Energy-minimizing pair selection under a time budget.
#[derive(Debug, Clone)]
pub struct DeadlinePolicy {
    name: String,
    params: DeadlineParams,
    model: PairModel,
    current: Option<(usize, usize)>,
    deadline_misses: u64,
    tracker: DecisionTracker,
}

impl DeadlinePolicy {
    /// Builds the selector over `model`.
    pub fn new(model: PairModel, params: DeadlineParams) -> Self {
        params.try_validate().expect("valid deadline params");
        let (n_core, n_mem) = model.shape();
        DeadlinePolicy {
            name: "deadline".to_string(),
            params,
            model,
            current: None,
            deadline_misses: 0,
            tracker: DecisionTracker::new(LossModel::new(n_core, n_mem, params.loss)),
        }
    }

    /// Overrides the display name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// The effective budget after slack, seconds.
    pub fn effective_budget_s(&self) -> f64 {
        self.params.time_budget_s * self.params.slack
    }

    /// Intervals where no feasible pair met the budget and the selector
    /// degraded to the fastest feasible pair.
    pub fn deadline_misses(&self) -> u64 {
        self.deadline_misses
    }

    /// The pair model predictions are read from.
    pub fn model(&self) -> &PairModel {
        &self.model
    }

    /// The selection itself: cheapest feasible pair within the budget,
    /// else fastest feasible pair, else `None`.
    fn select(&self, feasible: &dyn Fn(usize, usize) -> bool) -> Option<((usize, usize), bool)> {
        let budget = self.effective_budget_s();
        let (n_core, n_mem) = self.model.shape();
        let mut within: Option<(usize, usize)> = None;
        let mut within_e = f64::INFINITY;
        let mut fastest: Option<(usize, usize)> = None;
        let mut fastest_t = f64::INFINITY;
        for i in 0..n_core {
            for j in 0..n_mem {
                if !feasible(i, j) {
                    continue;
                }
                let t = self.model.time_s(i, j);
                let e = self.model.energy_j(i, j);
                if t <= budget && e < within_e {
                    within_e = e;
                    within = Some((i, j));
                }
                if fastest.is_none() || t < fastest_t {
                    fastest_t = t;
                    fastest = Some((i, j));
                }
            }
        }
        match (within, fastest) {
            (Some(pair), _) => Some((pair, true)),
            (None, Some(pair)) => Some((pair, false)),
            (None, None) => None,
        }
    }
}

impl FreqPolicy for DeadlinePolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn shape(&self) -> (usize, usize) {
        self.model.shape()
    }

    fn decide(&mut self, u_core: f64, u_mem: f64, feasible: &dyn Fn(usize, usize) -> bool) -> (usize, usize) {
        let (n_core, n_mem) = self.model.shape();
        if !(u_core.is_finite() && u_mem.is_finite()) {
            self.tracker.note_invalid();
            return match hold_masked(self.current.unwrap_or((0, 0)), n_core, n_mem, feasible) {
                Some(pair) => pair,
                None => {
                    self.tracker.note_empty_mask();
                    (0, 0)
                }
            };
        }
        let Some((chosen, met)) = self.select(feasible) else {
            self.tracker.note_empty_mask();
            return (0, 0);
        };
        if !met {
            self.deadline_misses += 1;
        }
        // Model-based selection pays no switching penalty (it converges
        // to a fixed pair under a fixed mask); losses are still scored
        // on the shared Table-I scale for cross-policy regret tables.
        self.tracker.record(u_core, u_mem, chosen, 0.0);
        self.current = Some(chosen);
        chosen
    }

    fn preferred(&self) -> (usize, usize) {
        match self.current {
            Some(pair) => pair,
            None => self.select(&|_, _| true).map(|(p, _)| p).unwrap_or((0, 0)),
        }
    }

    fn telemetry(&self) -> &PolicyTelemetry {
        self.tracker.telemetry()
    }

    fn reset(&mut self) {
        self.current = None;
        self.deadline_misses = 0;
        self.tracker.reset();
    }

    fn snapshot(&self) -> JsonValue {
        // The selection is a pure function of the (static) model, so the
        // incumbent pair plus the miss counter is the whole warm state.
        JsonValue::Obj(vec![
            ("current".to_string(), snap::pair(self.current)),
            ("deadline_misses".to_string(), JsonValue::u64(self.deadline_misses)),
        ])
    }

    fn restore(&mut self, state: &JsonValue) -> Result<(), String> {
        let (n_core, n_mem) = self.model.shape();
        let current = snap::parse_pair(snap::field(state, "current")?, "current", n_core, n_mem)?;
        let misses = snap::parse_u64(state, "deadline_misses")?;
        self.current = current;
        self.deadline_misses = misses;
        Ok(())
    }

    fn decision_fingerprint(&self) -> Option<u64> {
        // `select` is a pure function of the (static) model and the mask,
        // so the incumbent pair plus the miss counter is the entire
        // decision-relevant state — the same field set the snapshot
        // carries. The tracker is telemetry and deliberately excluded.
        let mut h = greengpu_sim::Fnv64::new();
        match self.current {
            Some((i, j)) => {
                h.push_bool(true);
                h.push_usize(i);
                h.push_usize(j);
            }
            None => h.push_bool(false),
        }
        h.push_u64(self.deadline_misses);
        Some(h.finish())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_hw::calib::geforce_8800_gtx;

    const ALL: fn(usize, usize) -> bool = |_, _| true;

    fn model() -> PairModel {
        // A moderately compute-leaning kernel on the calibrated card.
        PairModel::from_work(&geforce_8800_gtx(), &WorkUnits::new(4e11, 8e9))
    }

    #[test]
    fn from_work_time_shrinks_with_higher_levels() {
        let m = model();
        let (n_core, n_mem) = m.shape();
        assert!(m.time_s(0, 0) > m.peak_time_s());
        for i in 1..n_core {
            assert!(m.time_s(i, n_mem - 1) <= m.time_s(i - 1, n_mem - 1) + 1e-12);
        }
    }

    #[test]
    fn loose_budget_selects_cheapest_pair() {
        let m = model();
        let (n_core, n_mem) = m.shape();
        let mut cheapest = (0, 0);
        let mut e = f64::INFINITY;
        for i in 0..n_core {
            for j in 0..n_mem {
                if m.energy_j(i, j) < e {
                    e = m.energy_j(i, j);
                    cheapest = (i, j);
                }
            }
        }
        let mut p = DeadlinePolicy::new(
            m,
            DeadlineParams {
                time_budget_s: 1e9,
                ..DeadlineParams::default()
            },
        );
        assert_eq!(p.decide(0.5, 0.5, &ALL), cheapest);
        assert_eq!(p.deadline_misses(), 0);
    }

    #[test]
    fn tight_budget_forces_faster_pairs() {
        let m = model();
        let peak_t = m.peak_time_s();
        let loose = DeadlinePolicy::new(
            m.clone(),
            DeadlineParams {
                time_budget_s: peak_t * 3.0,
                ..DeadlineParams::default()
            },
        );
        let tight = DeadlinePolicy::new(
            m.clone(),
            DeadlineParams {
                time_budget_s: peak_t * 1.05,
                ..DeadlineParams::default()
            },
        );
        let mut loose = loose;
        let mut tight = tight;
        let pl = loose.decide(0.6, 0.4, &ALL);
        let pt = tight.decide(0.6, 0.4, &ALL);
        assert!(m.time_s(pt.0, pt.1) <= peak_t * 1.05);
        assert!(
            m.energy_j(pl.0, pl.1) <= m.energy_j(pt.0, pt.1),
            "loose budget must not cost more energy"
        );
    }

    #[test]
    fn impossible_budget_degrades_to_fastest_and_counts_miss() {
        let m = model();
        let mut p = DeadlinePolicy::new(
            m.clone(),
            DeadlineParams {
                time_budget_s: m.peak_time_s() * 0.5,
                ..DeadlineParams::default()
            },
        );
        let (n_core, n_mem) = m.shape();
        assert_eq!(p.decide(0.5, 0.5, &ALL), (n_core - 1, n_mem - 1));
        assert_eq!(p.deadline_misses(), 1);
    }

    #[test]
    fn slack_widens_the_budget() {
        let m = model();
        let base = DeadlineParams {
            time_budget_s: m.peak_time_s() * 0.9,
            ..DeadlineParams::default()
        };
        let mut tight = DeadlinePolicy::new(m.clone(), base);
        let mut slackened = DeadlinePolicy::new(m, DeadlineParams { slack: 2.0, ..base });
        tight.decide(0.5, 0.5, &ALL);
        slackened.decide(0.5, 0.5, &ALL);
        assert_eq!(tight.deadline_misses(), 1);
        assert_eq!(slackened.deadline_misses(), 0);
    }

    #[test]
    fn decision_fingerprint_is_a_fixed_point_of_identical_decides() {
        // The contract the event-driven engine leans on: the fingerprint
        // is stable exactly while repeated decides reproduce the same
        // state, and moves the moment decision-relevant state (incumbent
        // pair, miss counter) moves.
        let m = model();
        // A comfortably feasible budget: decides settle instead of
        // counting a miss every interval.
        let mut p = DeadlinePolicy::new(
            m.clone(),
            DeadlineParams {
                time_budget_s: m.peak_time_s() * 3.0,
                ..DeadlineParams::default()
            },
        );
        let fresh = p
            .decision_fingerprint()
            .expect("deadline policy certifies a fingerprint");
        assert_eq!(p.decision_fingerprint(), Some(fresh), "read-only probe");
        let pair = p.decide(0.5, 0.5, &ALL);
        let settled = p.decision_fingerprint().expect("still certified after a decide");
        assert_ne!(settled, fresh, "adopting an incumbent pair must move the fingerprint");
        assert_eq!(p.decide(0.5, 0.5, &ALL), pair);
        assert_eq!(
            p.decision_fingerprint(),
            Some(settled),
            "an identical decide is an identity on the fingerprint"
        );
        // A miss is decision-relevant state even when the chosen pair is
        // unchanged: force one with an impossible budget.
        let mut q = DeadlinePolicy::new(
            m.clone(),
            DeadlineParams {
                time_budget_s: m.peak_time_s() * 0.5,
                ..DeadlineParams::default()
            },
        );
        q.decide(0.5, 0.5, &ALL);
        let before = q.decision_fingerprint();
        q.decide(0.5, 0.5, &ALL);
        assert_ne!(
            q.decision_fingerprint(),
            before,
            "each counted miss must move the fingerprint"
        );
    }

    #[test]
    fn respects_mask_and_counts_empty() {
        let m = model();
        let mut p = DeadlinePolicy::new(m, DeadlineParams::default());
        let (i, j) = p.decide(0.5, 0.5, &|i, j| i <= 1 && j <= 1);
        assert!(i <= 1 && j <= 1);
        assert_eq!(p.decide(0.5, 0.5, &|_, _| false), (0, 0));
        assert_eq!(p.telemetry().empty_mask_fallbacks, 1);
    }

    #[test]
    fn nan_holds_current_without_selection() {
        let m = model();
        let mut p = DeadlinePolicy::new(m, DeadlineParams::default());
        let first = p.decide(0.5, 0.5, &ALL);
        let held = p.decide(f64::NAN, 0.5, &ALL);
        assert_eq!(first, held);
        assert_eq!(p.telemetry().invalid_inputs, 1);
    }

    #[test]
    fn from_grids_validates_shape_and_values() {
        let err = PairModel::from_grids(6, 6, vec![1.0; 35], vec![1.0; 36]).unwrap_err();
        assert!(err.contains("time_s"), "{err}");
        let err = PairModel::from_grids(6, 6, vec![1.0; 36], vec![f64::NAN; 36]).unwrap_err();
        assert!(err.contains("energy_j"), "{err}");
        let err = PairModel::from_grids(1, 6, vec![1.0; 6], vec![1.0; 6]).unwrap_err();
        assert!(err.contains("2x2"), "{err}");
        assert!(PairModel::from_grids(2, 2, vec![1.0; 4], vec![1.0; 4]).is_ok());
    }

    #[test]
    fn bad_params_name_the_offending_field() {
        let err = DeadlineParams {
            time_budget_s: 0.0,
            ..DeadlineParams::default()
        }
        .try_validate()
        .unwrap_err();
        assert!(err.contains("time_budget_s"), "{err}");
        let err = DeadlineParams {
            slack: -1.0,
            ..DeadlineParams::default()
        }
        .try_validate()
        .unwrap_err();
        assert!(err.contains("slack"), "{err}");
    }
}
