//! Per-interval policy telemetry: cumulative loss, switches, regret.
//!
//! Every policy owns a [`DecisionTracker`], the *experimenter's* view of
//! the run: it charges each enforced pair the full-information Table-I
//! loss (even for bandit policies, which only *learn* from their chosen
//! arm), accumulates the per-pair static losses, and reports regret
//! against the best static pair in hindsight. Because a static
//! comparator never switches, the tracker's regret compares the policy's
//! *charged* loss (base + switching penalties actually incurred) to the
//! comparator's pure base loss.

use crate::loss::LossModel;

/// Snapshot of a policy's accumulated telemetry.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct PolicyTelemetry {
    /// Decision intervals processed (valid observations only).
    pub intervals: u64,
    /// Enforced-pair changes between consecutive intervals.
    pub switches: u64,
    /// Cumulative charged loss: Table-I base loss of the enforced pair
    /// plus any switching penalty incurred.
    pub cumulative_loss: f64,
    /// Cumulative Table-I base loss only (no switching penalties).
    pub base_loss: f64,
    /// Cumulative loss of the best static pair in hindsight.
    pub best_static_loss: f64,
    /// Regret: `cumulative_loss − best_static_loss`.
    pub regret: f64,
    /// Cumulative loss of the per-interval sweet-spot oracle: the
    /// closed-form [`LossModel::sweet_spot`] pair charged each interval.
    /// A *dynamic* comparator — it re-optimizes every interval, so it
    /// lower-bounds every static comparator and every policy.
    pub oracle_loss: f64,
    /// Exact-oracle regret: `cumulative_loss − oracle_loss`. Always
    /// ≥ `regret`; the gap between the two is what phase-conditioned
    /// policies can close on phase-cycling workloads.
    pub oracle_regret: f64,
    /// Intervals whose feasible set was empty (decision degraded to the
    /// lowest-power pair `(0, 0)`).
    pub empty_mask_fallbacks: u64,
    /// Non-finite utilization observations rejected without learning.
    pub invalid_inputs: u64,
}

/// Accumulates [`PolicyTelemetry`] for one policy instance.
#[derive(Debug, Clone)]
pub struct DecisionTracker {
    model: LossModel,
    /// Row-major per-pair cumulative base loss (the static comparators).
    static_loss: Vec<f64>,
    last: Option<(usize, usize)>,
    telemetry: PolicyTelemetry,
}

impl DecisionTracker {
    /// A fresh tracker scoring against `model`.
    pub fn new(model: LossModel) -> Self {
        let (n_core, n_mem) = model.shape();
        DecisionTracker {
            model,
            static_loss: vec![0.0; n_core * n_mem],
            last: None,
            telemetry: PolicyTelemetry::default(),
        }
    }

    /// The loss model decisions are scored against.
    pub fn model(&self) -> &LossModel {
        &self.model
    }

    /// Records one valid decision interval: the enforced `pair` under
    /// clamped utilizations, plus the switching penalty the policy
    /// actually charged itself (0 for switching-oblivious policies).
    pub fn record(&mut self, u_core: f64, u_mem: f64, pair: (usize, usize), switching_penalty: f64) {
        let (n_core, n_mem) = self.model.shape();
        debug_assert!(pair.0 < n_core && pair.1 < n_mem, "pair out of range");
        for i in 0..n_core {
            for j in 0..n_mem {
                self.static_loss[i * n_mem + j] += self.model.loss(i, j, u_core, u_mem);
            }
        }
        let base = self.model.loss(pair.0, pair.1, u_core, u_mem);
        if let Some(last) = self.last {
            if last != pair {
                self.telemetry.switches += 1;
            }
        }
        self.last = Some(pair);
        self.telemetry.intervals += 1;
        self.telemetry.base_loss += base;
        self.telemetry.cumulative_loss += base + switching_penalty.max(0.0);
        let best = self.static_loss.iter().copied().fold(f64::INFINITY, f64::min);
        self.telemetry.best_static_loss = best;
        self.telemetry.regret = self.telemetry.cumulative_loss - best;
        let sweet = self.model.sweet_spot(u_core, u_mem);
        self.telemetry.oracle_loss += self.model.loss(sweet.0, sweet.1, u_core, u_mem);
        self.telemetry.oracle_regret = self.telemetry.cumulative_loss - self.telemetry.oracle_loss;
    }

    /// Counts an empty-feasible-set fallback.
    pub fn note_empty_mask(&mut self) {
        self.telemetry.empty_mask_fallbacks += 1;
    }

    /// Counts a rejected non-finite observation.
    pub fn note_invalid(&mut self) {
        self.telemetry.invalid_inputs += 1;
    }

    /// The last recorded pair, if any.
    pub fn last_pair(&self) -> Option<(usize, usize)> {
        self.last
    }

    /// The best static pair in hindsight and its cumulative base loss
    /// (ties toward lower levels).
    pub fn best_static(&self) -> ((usize, usize), f64) {
        let (n_core, n_mem) = self.model.shape();
        let mut best = (0, 0);
        let mut best_l = f64::INFINITY;
        for i in 0..n_core {
            for j in 0..n_mem {
                let l = self.static_loss[i * n_mem + j];
                if l < best_l {
                    best_l = l;
                    best = (i, j);
                }
            }
        }
        ((best), if best_l.is_finite() { best_l } else { 0.0 })
    }

    /// The telemetry snapshot.
    pub fn telemetry(&self) -> &PolicyTelemetry {
        &self.telemetry
    }

    /// Resets all accumulators.
    pub fn reset(&mut self) {
        self.static_loss.iter_mut().for_each(|l| *l = 0.0);
        self.last = None;
        self.telemetry = PolicyTelemetry::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::LossParams;

    fn tracker() -> DecisionTracker {
        DecisionTracker::new(LossModel::new(6, 6, LossParams::default()))
    }

    #[test]
    fn switches_count_pair_changes_only() {
        let mut t = tracker();
        t.record(0.5, 0.5, (2, 2), 0.0);
        t.record(0.5, 0.5, (2, 2), 0.0);
        t.record(0.5, 0.5, (3, 2), 0.0);
        t.record(0.5, 0.5, (2, 2), 0.0);
        assert_eq!(t.telemetry().switches, 2);
        assert_eq!(t.telemetry().intervals, 4);
    }

    #[test]
    fn static_best_pair_has_zero_regret() {
        // Always playing the hindsight-best pair with no switching
        // penalty gives exactly zero regret.
        let mut t = tracker();
        for _ in 0..20 {
            t.record(0.6, 0.6, (3, 3), 0.0);
        }
        assert_eq!(t.best_static().0, (3, 3));
        assert!(t.telemetry().regret.abs() < 1e-12, "regret {}", t.telemetry().regret);
    }

    #[test]
    fn switching_penalties_inflate_charged_loss_and_regret() {
        let mut a = tracker();
        let mut b = tracker();
        for k in 0..10 {
            let pair = if k % 2 == 0 { (3, 3) } else { (4, 3) };
            a.record(0.6, 0.6, pair, 0.0);
            b.record(0.6, 0.6, pair, 0.05);
        }
        assert_eq!(a.telemetry().base_loss, b.telemetry().base_loss);
        assert!(b.telemetry().cumulative_loss > a.telemetry().cumulative_loss);
        assert!(b.telemetry().regret > a.telemetry().regret);
    }

    #[test]
    fn counters_and_reset() {
        let mut t = tracker();
        t.note_empty_mask();
        t.note_invalid();
        t.record(0.5, 0.5, (1, 1), 0.0);
        assert_eq!(t.telemetry().empty_mask_fallbacks, 1);
        assert_eq!(t.telemetry().invalid_inputs, 1);
        t.reset();
        assert_eq!(t.telemetry(), &PolicyTelemetry::default());
        assert_eq!(t.last_pair(), None);
    }

    #[test]
    fn oracle_regret_dominates_static_regret() {
        // The dynamic sweet-spot comparator re-optimizes per interval,
        // so its cumulative loss lower-bounds the best static pair's —
        // oracle_regret ≥ regret, with equality only on constant traces.
        let mut t = tracker();
        for k in 0..12 {
            let u = if k % 2 == 0 { 0.85 } else { 0.25 };
            t.record(u, 1.0 - u, (3, 3), 0.0);
        }
        let telem = t.telemetry();
        assert!(telem.oracle_loss <= telem.best_static_loss + 1e-12);
        assert!(telem.oracle_regret >= telem.regret - 1e-12);
        assert!(
            telem.oracle_regret > telem.regret + 1e-9,
            "a fluctuating trace must open a gap: {} vs {}",
            telem.oracle_regret,
            telem.regret
        );
    }

    #[test]
    fn oracle_has_zero_regret_against_itself_on_level_exact_traces() {
        let mut t = tracker();
        for _ in 0..10 {
            // u sits exactly on level 3's umean: sweet spot is (3, 3)
            // with zero loss, and playing it charges zero loss.
            t.record(0.6, 0.6, (3, 3), 0.0);
        }
        assert_eq!(t.telemetry().oracle_loss, 0.0);
        assert!(t.telemetry().oracle_regret.abs() < 1e-12);
    }

    #[test]
    fn regret_is_never_negative_without_switching_credit() {
        // Charged loss of any trajectory is ≥ the best static pair's
        // base loss when penalties are non-negative... per-interval the
        // chosen pair can beat the *cumulative* static best early, so we
        // only check the defining identity.
        let mut t = tracker();
        t.record(0.9, 0.1, (5, 0), 0.0);
        t.record(0.1, 0.9, (0, 5), 0.02);
        let telem = t.telemetry();
        assert!((telem.regret - (telem.cumulative_loss - telem.best_static_loss)).abs() < 1e-12);
    }
}
