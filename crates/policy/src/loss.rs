//! The Table-I loss model shared by every policy's accounting.
//!
//! This mirrors the paper's Eqs. 1–3 exactly as `greengpu::wma`
//! implements them (that scaler keeps its own copy so it stays
//! byte-identical to the seed reproduction): each level has a *suitable
//! utilization* `umean` on the Dhiman–Rosing linear map; a level below
//! the observed utilization is charged performance loss `u − umean`, a
//! level above it energy loss `umean − u`; `α` folds the two per domain
//! and `φ` combines the domains. Both bandits charge this loss (plus the
//! switching penalty), and regret is measured in its units, so WMA,
//! EXP3, UCB, and the deadline selector are all scored on one scale.

/// Loss-shaping constants (the paper's fitted values as defaults).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LossParams {
    /// Energy-vs-performance trade-off for the core domain (`α_c = 0.15`).
    pub alpha_core: f64,
    /// Trade-off for the memory domain (`α_m = 0.02`).
    pub alpha_mem: f64,
    /// Core/memory loss balance (`φ = 0.3`).
    pub phi: f64,
}

impl Default for LossParams {
    fn default() -> Self {
        LossParams {
            alpha_core: 0.15,
            alpha_mem: 0.02,
            phi: 0.3,
        }
    }
}

impl LossParams {
    /// Non-panicking range check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        for (name, v) in [
            ("alpha_core", self.alpha_core),
            ("alpha_mem", self.alpha_mem),
            ("phi", self.phi),
        ] {
            if !(0.0..=1.0).contains(&v) {
                return Err(format!("{name} must be in [0,1], got {v}"));
            }
        }
        Ok(())
    }
}

/// The per-pair Table-I loss over an `N×M` grid.
#[derive(Debug, Clone)]
pub struct LossModel {
    params: LossParams,
    ucmean: Vec<f64>,
    ummean: Vec<f64>,
}

impl LossModel {
    /// Builds the model for `n_core × n_mem` levels with the linear
    /// `umean` maps (peak level suits 100 % utilization, lowest suits
    /// 0 %, intermediates evenly spaced).
    pub fn new(n_core: usize, n_mem: usize, params: LossParams) -> Self {
        assert!(n_core >= 2 && n_mem >= 2, "need at least two levels per domain");
        params.try_validate().expect("valid loss params");
        let linmap = |n: usize| -> Vec<f64> { (0..n).map(|i| i as f64 / (n - 1) as f64).collect() };
        LossModel {
            params,
            ucmean: linmap(n_core),
            ummean: linmap(n_mem),
        }
    }

    /// Grid shape `(n_core, n_mem)`.
    pub fn shape(&self) -> (usize, usize) {
        (self.ucmean.len(), self.ummean.len())
    }

    /// The loss parameters.
    pub fn params(&self) -> LossParams {
        self.params
    }

    fn domain_loss(u: f64, umean: f64, alpha: f64) -> f64 {
        if u > umean {
            (1.0 - alpha) * (u - umean) // performance loss
        } else {
            alpha * (umean - u) // energy loss
        }
    }

    /// Closed-form per-domain argmin of the V-shaped level loss.
    ///
    /// Each domain's loss is piecewise linear in `umean` with slope
    /// `−(1−α)` below the observed utilization and `+α` above it, so the
    /// minimizer is one of the two levels bracketing `u` on the linear
    /// map — no grid scan needed. Because Eq. 3 is separable and `φ`
    /// weights both domains positively (`φ ∈ (0, 1)`), the pair of
    /// per-domain minimizers is exactly the grid argmin, with the same
    /// lower-level tie-break as [`DecisionTracker::best_static`]. This
    /// is the per-interval *sweet-spot oracle* the contextual policies
    /// are scored against.
    ///
    /// [`DecisionTracker::best_static`]: crate::telemetry::DecisionTracker::best_static
    pub fn sweet_spot(&self, u_core: f64, u_mem: f64) -> (usize, usize) {
        (
            Self::domain_argmin(&self.ucmean, u_core.clamp(0.0, 1.0), self.params.alpha_core),
            Self::domain_argmin(&self.ummean, u_mem.clamp(0.0, 1.0), self.params.alpha_mem),
        )
    }

    /// The lower/upper bracketing level with the smaller V-loss (ties
    /// toward the lower level, matching row-major exhaustive scans).
    fn domain_argmin(means: &[f64], u: f64, alpha: f64) -> usize {
        let n = means.len();
        let lo = ((u * (n - 1) as f64).floor() as usize).min(n - 1);
        let hi = (lo + 1).min(n - 1);
        let l_lo = (1.0 - alpha) * (u - means[lo]);
        let l_hi = alpha * (means[hi] - u);
        if l_lo <= l_hi {
            lo
        } else {
            hi
        }
    }

    /// The combined Eq. 3 loss of pair `(i, j)` under clamped
    /// utilizations — always in `[0, 1]`.
    pub fn loss(&self, i: usize, j: usize, u_core: f64, u_mem: f64) -> f64 {
        let u_core = u_core.clamp(0.0, 1.0);
        let u_mem = u_mem.clamp(0.0, 1.0);
        let lc = Self::domain_loss(u_core, self.ucmean[i], self.params.alpha_core);
        let lm = Self::domain_loss(u_mem, self.ummean[j], self.params.alpha_mem);
        self.params.phi * lc + (1.0 - self.params.phi) * lm
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_loss_at_matching_level() {
        let m = LossModel::new(6, 6, LossParams::default());
        // u exactly on level 3's umean (0.6): that pair has zero loss.
        assert_eq!(m.loss(3, 3, 0.6, 0.6), 0.0);
        assert!(m.loss(0, 0, 0.6, 0.6) > 0.0);
        assert!(m.loss(5, 5, 0.6, 0.6) > 0.0);
    }

    #[test]
    fn losses_stay_in_unit_interval() {
        let m = LossModel::new(6, 6, LossParams::default());
        for i in 0..6 {
            for j in 0..6 {
                for u in [0.0, 0.3, 0.7, 1.0, -2.0, 5.0] {
                    let l = m.loss(i, j, u, 1.0 - u);
                    assert!((0.0..=1.0).contains(&l), "loss {l}");
                }
            }
        }
    }

    #[test]
    fn try_validate_names_the_offending_field() {
        let bad = LossParams {
            phi: 1.5,
            ..LossParams::default()
        };
        let err = bad.try_validate().unwrap_err();
        assert!(err.contains("phi"), "{err}");
        assert!(LossParams::default().try_validate().is_ok());
    }

    #[test]
    fn sweet_spot_matches_exhaustive_grid_argmin() {
        // The closed form must agree with a row-major exhaustive scan
        // (strict-< keeps the first minimum, i.e. lower levels on ties)
        // across the whole utilization square, including level-exact and
        // out-of-range inputs.
        let m = LossModel::new(6, 6, LossParams::default());
        let mut us: Vec<f64> = (0..=20).map(|k| k as f64 / 20.0).collect();
        us.extend([-0.5, 1.5, 0.123_456, 0.999_99]);
        for &uc in &us {
            for &um in &us {
                let mut best = (0, 0);
                let mut best_l = f64::INFINITY;
                for i in 0..6 {
                    for j in 0..6 {
                        let l = m.loss(i, j, uc, um);
                        if l < best_l {
                            best_l = l;
                            best = (i, j);
                        }
                    }
                }
                assert_eq!(m.sweet_spot(uc, um), best, "u = ({uc}, {um})");
            }
        }
    }

    #[test]
    fn sweet_spot_is_exact_on_level_means() {
        let m = LossModel::new(6, 6, LossParams::default());
        for i in 0..6 {
            let u = i as f64 / 5.0;
            assert_eq!(m.sweet_spot(u, u), (i, i));
        }
    }

    #[test]
    fn matches_the_wma_scaler_formulation() {
        // Spot-check Eqs. 1-3 against hand-computed values (same numbers
        // the greengpu::wma tests pin).
        let m = LossModel::new(6, 6, LossParams::default());
        // u_core = 0.9 on umean 0.6: perf loss 0.3, folded by (1-0.15).
        // u_mem = 0.2 on umean 0.6: energy loss 0.4, folded by 0.02.
        let expect = 0.3 * (0.85 * 0.3) + 0.7 * (0.02 * 0.4);
        assert!((m.loss(3, 3, 0.9, 0.2) - expect).abs() < 1e-12);
    }
}
