//! # greengpu-policy — pluggable Tier-2 frequency-selection policies
//!
//! The paper's Tier-2 learner is a single Weighted-Majority table
//! (`greengpu::wma`). This crate makes frequency selection *pluggable*:
//! every online learner over the `N×M` (core level, memory level) pair
//! grid implements one object-safe trait, [`FreqPolicy`], and the
//! coordinator, the hardened faulted runs, and the cluster nodes all
//! drive whichever policy they are handed.
//!
//! Shipped policy families (beyond the WMA adapter, which lives in the
//! `greengpu` crate next to the scaler it wraps):
//!
//! * **Switching-aware bandits** ([`bandit`]): EXP3- and UCB-style
//!   learners in the spirit of *Online GPU Energy Optimization with
//!   Switching-Aware Bandits* (arXiv:2410.11855). Each interval charges
//!   the Table-I loss of the chosen pair *plus* a configurable
//!   switching-cost penalty, and a hysteresis rule keeps them from
//!   thrashing between adjacent levels.
//! * **Deadline-aware selection** ([`deadline`]): minimizes predicted
//!   energy subject to a per-iteration time budget, in the spirit of
//!   *A Data-Driven Frequency Scaling Approach for Deadline-aware Energy
//!   Efficient Scheduling on GPUs* (arXiv:2004.08177), over a
//!   [`deadline::PairModel`] derived from the calibrated
//!   frequency/performance model in `greengpu-hw`.
//!
//! Every policy is deterministic under a fixed seed (randomized policies
//! draw from [`greengpu_sim::Pcg32`] streams), always returns an
//! in-range pair, and respects the *feasible-set mask* exactly — the
//! power-capping seam the cluster tier relies on. Per-interval telemetry
//! ([`telemetry::PolicyTelemetry`]) tracks cumulative loss, switch
//! count, empty-mask fallbacks, and regret against the static-best pair
//! in hindsight.

#![forbid(unsafe_code)]

pub mod bandit;
pub mod contextual;
pub mod deadline;
pub mod loss;
pub mod telemetry;

pub use bandit::{Exp3Params, Exp3Policy, SwitchingParams, UcbParams, UcbPolicy};
pub use contextual::Contextual;
pub use deadline::{DeadlineParams, DeadlinePolicy, PairModel};
pub use greengpu_phase::{PhaseDetector, PhaseDetectorParams, PhaseId, PhaseTracker};
pub use greengpu_sim::JsonValue;
pub use loss::{LossModel, LossParams};
pub use telemetry::{DecisionTracker, PolicyTelemetry};

/// An online frequency-selection policy over the `N×M` pair grid — the
/// pluggable Tier-2 seam.
///
/// The contract every implementation upholds (and the proptests in
/// `tests/proptest_policies.rs` pin):
///
/// 1. **In-range**: [`FreqPolicy::decide`] returns `(i, j)` with
///    `i < n_core`, `j < n_mem`.
/// 2. **Mask-respecting**: when at least one pair is feasible, the
///    returned pair satisfies `feasible(i, j)`. An *empty* feasible set
///    degrades to `(0, 0)` — the lowest-power pair, the closest
///    enforceable point to any cap — and is counted in the telemetry.
/// 3. **Deterministic**: two instances built with the same parameters
///    and seed produce identical decision sequences for identical
///    observation sequences.
/// 4. **Garbage-tolerant**: non-finite utilizations never corrupt
///    learner state; the previous decision is held (restricted to the
///    mask) and the rejection is counted.
pub trait FreqPolicy: Send {
    /// Stable policy name used in experiment tables and CSV columns.
    fn name(&self) -> &str;

    /// The `(n_core, n_mem)` grid shape this policy selects over.
    fn shape(&self) -> (usize, usize);

    /// One control interval: observe the utilizations, learn, and return
    /// the `(core_level, mem_level)` pair to enforce next, restricted to
    /// pairs for which `feasible` is true.
    fn decide(&mut self, u_core: f64, u_mem: f64, feasible: &dyn Fn(usize, usize) -> bool) -> (usize, usize);

    /// The pair the policy currently prefers, without observing or
    /// learning — what a fresh unmasked decision would enforce. Used by
    /// the cluster tier to estimate a node's desired power draw.
    fn preferred(&self) -> (usize, usize);

    /// Per-interval telemetry accumulated so far.
    fn telemetry(&self) -> &PolicyTelemetry;

    /// Resets all learner state and telemetry to the initial state.
    fn reset(&mut self);

    /// Serializes the learner's warm state (weights, counts, RNG
    /// position, current pair) for checkpointing. Telemetry is *not*
    /// included — a restored policy reports fresh counters. The default
    /// (for stateless or test policies) is an empty object.
    fn snapshot(&self) -> JsonValue {
        JsonValue::Obj(Vec::new())
    }

    /// Restores learner state captured by [`FreqPolicy::snapshot`].
    /// Implementations validate the whole value *before* mutating any
    /// state, so a failed restore leaves the policy unchanged and the
    /// caller can fall back to a cold start. The default accepts
    /// anything and restores nothing.
    fn restore(&mut self, state: &JsonValue) -> Result<(), String> {
        let _ = state;
        Ok(())
    }

    /// A bit-exact fingerprint of every piece of state that can influence
    /// a future [`FreqPolicy::decide`] or [`FreqPolicy::preferred`]
    /// result, or `None` when the policy cannot certify one (the
    /// default). The event-driven fleet engine skips a node's control
    /// ticks only while this fingerprint is provably a fixed point, so:
    ///
    /// * telemetry-only counters must be *excluded* (they advance every
    ///   tick and would make quiescence undetectable);
    /// * anything that feeds decisions — weights, incumbent pairs, RNG
    ///   positions, visit counts — must be *included* (or the policy must
    ///   return `None`, the always-safe answer).
    ///
    /// Randomized/count-based policies (EXP3, UCB) keep the `None`
    /// default: their state moves on every decision, so no idle fixed
    /// point exists and nodes running them are simply never parked.
    fn decision_fingerprint(&self) -> Option<u64> {
        None
    }

    /// Downcast hook (e.g. to reach the wrapped `WmaScaler` behind the
    /// adapter in the `greengpu` crate).
    fn as_any(&self) -> &dyn std::any::Any;
}

/// Shared checkpoint (de)serialization helpers used by every
/// [`FreqPolicy::snapshot`]/[`FreqPolicy::restore`] implementation (the
/// `greengpu` crate reuses them for the WMA scaler and the division
/// controller). All parsers validate *fully* before the caller mutates
/// anything, and every error names the offending field.
pub mod snap {
    use greengpu_sim::JsonValue;

    /// Encodes an optional `(i, j)` pair as `[i, j]` or `null`.
    pub fn pair(current: Option<(usize, usize)>) -> JsonValue {
        match current {
            Some((i, j)) => JsonValue::Arr(vec![JsonValue::usize(i), JsonValue::usize(j)]),
            None => JsonValue::Null,
        }
    }

    /// Looks up a required field of an object snapshot.
    pub fn field<'a>(v: &'a JsonValue, name: &str) -> Result<&'a JsonValue, String> {
        v.get(name).ok_or_else(|| format!("snapshot missing field {name:?}"))
    }

    /// Decodes an optional in-range pair encoded by [`pair`].
    pub fn parse_pair(
        v: &JsonValue,
        name: &str,
        n_core: usize,
        n_mem: usize,
    ) -> Result<Option<(usize, usize)>, String> {
        if v.is_null() {
            return Ok(None);
        }
        let arr = v.as_arr().ok_or_else(|| format!("{name} must be [i, j] or null"))?;
        if arr.len() != 2 {
            return Err(format!("{name} must have exactly 2 elements, got {}", arr.len()));
        }
        let i = arr[0].as_usize().ok_or_else(|| format!("{name}[0] must be an index"))?;
        let j = arr[1].as_usize().ok_or_else(|| format!("{name}[1] must be an index"))?;
        if i >= n_core || j >= n_mem {
            return Err(format!("{name} ({i}, {j}) out of {n_core}x{n_mem} grid"));
        }
        Ok(Some((i, j)))
    }

    /// Decodes a fixed-length array of finite `f64`s.
    pub fn parse_f64_vec(v: &JsonValue, name: &str, len: usize) -> Result<Vec<f64>, String> {
        let arr = v.as_arr().ok_or_else(|| format!("{name} must be an array"))?;
        if arr.len() != len {
            return Err(format!("{name} must have {len} elements, got {}", arr.len()));
        }
        arr.iter()
            .enumerate()
            .map(|(k, x)| x.as_f64().ok_or_else(|| format!("{name}[{k}] must be a finite number")))
            .collect()
    }

    /// Decodes a fixed-length array of `u64`s (exact, no float detour).
    pub fn parse_u64_vec(v: &JsonValue, name: &str, len: usize) -> Result<Vec<u64>, String> {
        let arr = v.as_arr().ok_or_else(|| format!("{name} must be an array"))?;
        if arr.len() != len {
            return Err(format!("{name} must have {len} elements, got {}", arr.len()));
        }
        arr.iter()
            .enumerate()
            .map(|(k, x)| {
                x.as_u64()
                    .ok_or_else(|| format!("{name}[{k}] must be a non-negative integer"))
            })
            .collect()
    }

    /// Decodes a required `u64` field.
    pub fn parse_u64(v: &JsonValue, name: &str) -> Result<u64, String> {
        field(v, name)?
            .as_u64()
            .ok_or_else(|| format!("{name} must be a non-negative integer"))
    }
}

/// Shared helper: hold `current` under the mask — keep it if feasible,
/// otherwise fall back to the lowest feasible pair, or `(0, 0)` when the
/// mask is empty (the caller counts the fallback).
pub(crate) fn hold_masked(
    current: (usize, usize),
    n_core: usize,
    n_mem: usize,
    feasible: &dyn Fn(usize, usize) -> bool,
) -> Option<(usize, usize)> {
    if feasible(current.0, current.1) {
        return Some(current);
    }
    (0..n_core)
        .flat_map(|i| (0..n_mem).map(move |j| (i, j)))
        .find(|&(i, j)| feasible(i, j))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hold_keeps_feasible_current_and_degrades_in_order() {
        assert_eq!(hold_masked((1, 2), 2, 3, &|_, _| true), Some((1, 2)));
        assert_eq!(hold_masked((1, 2), 2, 3, &|i, j| i == 0 && j == 1), Some((0, 1)));
        assert_eq!(hold_masked((1, 2), 2, 3, &|_, _| false), None);
    }
}
