//! Switching-aware bandit policies over the frequency-pair grid.
//!
//! Frequency selection is a textbook adversarial bandit: `K = N×M` arms
//! (the pairs), one pull per control interval, loss = the Table-I loss
//! under the observed utilizations. The twist — following *Online GPU
//! Energy Optimization with Switching-Aware Bandits* (arXiv:2410.11855)
//! — is that changing the enforced pair is not free: a reclock stalls
//! the SMs for milliseconds and, repeated every interval, erases the
//! energy the throttle was buying. Both learners therefore charge
//! themselves an explicit switching cost and apply a *hysteresis* rule
//! before leaving the incumbent pair:
//!
//! * [`Exp3Policy`] — EXP3 (Auer et al. 2002): exponential weights with
//!   `γ`-uniform exploration and importance-weighted updates of the
//!   pulled arm only. The charged loss is `base + switch_cost ·
//!   d(pair, prev)/d_max` (normalized L1 level distance), so the weight
//!   table itself learns that thrashing is expensive; hysteresis keeps a
//!   sampled challenger from unseating the incumbent unless its weight
//!   is decisively larger.
//! * [`UcbPolicy`] — UCB1-style lower-confidence selection on mean
//!   losses (stochastic view of the same problem): the selection index
//!   of a challenger is inflated by the switching cost of reaching it,
//!   and the incumbent is kept unless the challenger's index undercuts
//!   it by the hysteresis margin. Unplayed feasible arms have `−∞`
//!   index, so every arm is explored once (identically in the
//!   no-penalty ablation — the penalty differentiates steady state, not
//!   the forced exploration sweep).
//!
//! Setting `switch_cost = 0` and `hysteresis = 0` yields the no-penalty
//! ablations (`exp3-nosw`, `ucb-nosw`) the `policies` experiment
//! compares against.

use crate::loss::{LossModel, LossParams};
use crate::telemetry::{DecisionTracker, PolicyTelemetry};
use crate::{hold_masked, snap, FreqPolicy};
use greengpu_sim::{JsonValue, Pcg32};

/// Switching-cost shaping shared by both bandits.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SwitchingParams {
    /// Loss units charged for a full-grid-diameter reclock; a one-level
    /// move costs `switch_cost / d_max`. 0 disables the penalty.
    pub switch_cost: f64,
    /// Hysteresis margin the challenger must clear before the incumbent
    /// is abandoned (relative weight factor for EXP3, absolute index
    /// margin for UCB). 0 disables hysteresis.
    pub hysteresis: f64,
}

impl Default for SwitchingParams {
    fn default() -> Self {
        SwitchingParams {
            switch_cost: 0.30,
            hysteresis: 0.15,
        }
    }
}

impl SwitchingParams {
    /// The no-penalty ablation.
    pub fn none() -> Self {
        SwitchingParams {
            switch_cost: 0.0,
            hysteresis: 0.0,
        }
    }

    /// Non-panicking range check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        if !self.switch_cost.is_finite() || self.switch_cost < 0.0 {
            return Err(format!("switch_cost must be finite and >= 0, got {}", self.switch_cost));
        }
        if !self.hysteresis.is_finite() || self.hysteresis < 0.0 {
            return Err(format!("hysteresis must be finite and >= 0, got {}", self.hysteresis));
        }
        Ok(())
    }
}

/// Normalized L1 level distance between two pairs in `[0, 1]`.
pub(crate) fn dist_norm(a: (usize, usize), b: (usize, usize), n_core: usize, n_mem: usize) -> f64 {
    let d = a.0.abs_diff(b.0) + a.1.abs_diff(b.1);
    let d_max = (n_core - 1) + (n_mem - 1);
    d as f64 / d_max as f64
}

/// EXP3 tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Exp3Params {
    /// Uniform-exploration mixture `γ ∈ (0, 1]`.
    pub gamma: f64,
    /// Learning rate `η > 0` of the exponential update.
    pub eta: f64,
    /// Switching-cost shaping.
    pub switching: SwitchingParams,
    /// Loss shaping (Table-I constants).
    pub loss: LossParams,
}

impl Default for Exp3Params {
    fn default() -> Self {
        // η follows the classic √(ln K / (T·K)) scaling for K = 36 arms
        // over a few hundred intervals; importance-weighted losses reach
        // `l/p ≈ K/γ`, so a large η would crater the pulled arm's weight
        // in one update and defeat the hysteresis.
        Exp3Params {
            gamma: 0.10,
            eta: 0.02,
            switching: SwitchingParams::default(),
            loss: LossParams::default(),
        }
    }
}

impl Exp3Params {
    /// Non-panicking range check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        if !(self.gamma > 0.0 && self.gamma <= 1.0) {
            return Err(format!("gamma must be in (0,1], got {}", self.gamma));
        }
        if !self.eta.is_finite() || self.eta <= 0.0 {
            return Err(format!("eta must be finite and > 0, got {}", self.eta));
        }
        self.switching.try_validate()?;
        self.loss.try_validate()
    }
}

/// The EXP3 switching-aware bandit.
#[derive(Debug, Clone)]
pub struct Exp3Policy {
    name: String,
    params: Exp3Params,
    model: LossModel,
    n_core: usize,
    n_mem: usize,
    /// Row-major exponential weights, renormalized by the max.
    weights: Vec<f64>,
    rng: Pcg32,
    seed: u64,
    current: Option<(usize, usize)>,
    tracker: DecisionTracker,
}

impl Exp3Policy {
    /// Builds the policy for an `n_core × n_mem` grid; all randomness
    /// derives from `seed`.
    pub fn new(n_core: usize, n_mem: usize, params: Exp3Params, seed: u64) -> Self {
        params.try_validate().expect("valid EXP3 params");
        let model = LossModel::new(n_core, n_mem, params.loss);
        let name = if params.switching.switch_cost > 0.0 || params.switching.hysteresis > 0.0 {
            "exp3"
        } else {
            "exp3-nosw"
        };
        Exp3Policy {
            name: name.to_string(),
            params,
            tracker: DecisionTracker::new(model.clone()),
            model,
            n_core,
            n_mem,
            weights: vec![1.0; n_core * n_mem],
            rng: Pcg32::new(seed, 0xE3),
            seed,
            current: None,
        }
    }

    /// Overrides the display name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Weight of pair `(i, j)` (inspection/tests).
    pub fn weight(&self, i: usize, j: usize) -> f64 {
        self.weights[i * self.n_mem + j]
    }
}

impl FreqPolicy for Exp3Policy {
    fn name(&self) -> &str {
        &self.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.n_core, self.n_mem)
    }

    fn decide(&mut self, u_core: f64, u_mem: f64, feasible: &dyn Fn(usize, usize) -> bool) -> (usize, usize) {
        if !(u_core.is_finite() && u_mem.is_finite()) {
            // Reject garbage without consuming randomness or weights;
            // hold the incumbent inside the mask.
            self.tracker.note_invalid();
            return match hold_masked(self.current.unwrap_or((0, 0)), self.n_core, self.n_mem, feasible) {
                Some(pair) => pair,
                None => {
                    self.tracker.note_empty_mask();
                    (0, 0)
                }
            };
        }
        let feasible_arms: Vec<(usize, usize)> = (0..self.n_core)
            .flat_map(|i| (0..self.n_mem).map(move |j| (i, j)))
            .filter(|&(i, j)| feasible(i, j))
            .collect();
        if feasible_arms.is_empty() {
            self.tracker.note_empty_mask();
            return (0, 0);
        }
        // γ-mixed sampling distribution over the feasible arms only.
        let total_w: f64 = feasible_arms.iter().map(|&(i, j)| self.weight(i, j)).sum();
        let k_f = feasible_arms.len() as f64;
        let prob = |w: f64| (1.0 - self.params.gamma) * w / total_w + self.params.gamma / k_f;
        let draw = self.rng.next_f64();
        let mut cum = 0.0;
        let mut chosen = feasible_arms.last().copied().unwrap_or((0, 0));
        let mut p_chosen = prob(self.weight(chosen.0, chosen.1));
        for &(i, j) in &feasible_arms {
            let p = prob(self.weight(i, j));
            cum += p;
            if draw < cum {
                chosen = (i, j);
                p_chosen = p;
                break;
            }
        }
        // Hysteresis: a sampled challenger only unseats a feasible
        // incumbent when its weight is decisively larger.
        if let Some(cur) = self.current {
            if chosen != cur
                && feasible(cur.0, cur.1)
                && self.weight(chosen.0, chosen.1)
                    <= self.weight(cur.0, cur.1) * (1.0 + self.params.switching.hysteresis)
            {
                chosen = cur;
                p_chosen = prob(self.weight(cur.0, cur.1));
            }
        }
        // Charge the pulled arm: Table-I base loss plus the distance-
        // scaled switching penalty, importance-weighted by its pull
        // probability.
        let penalty = match self.current {
            Some(cur) if cur != chosen => {
                self.params.switching.switch_cost * dist_norm(chosen, cur, self.n_core, self.n_mem)
            }
            _ => 0.0,
        };
        let base = self.model.loss(chosen.0, chosen.1, u_core, u_mem);
        let charged = (base + penalty).clamp(0.0, 1.0);
        let l_hat = charged / p_chosen;
        let w = &mut self.weights[chosen.0 * self.n_mem + chosen.1];
        *w *= (-self.params.eta * l_hat).exp();
        // Renormalize by the max so weights never underflow; sampling
        // probabilities depend only on ratios.
        let max_w = self.weights.iter().copied().fold(0.0f64, f64::max);
        if max_w > 0.0 && max_w.is_finite() {
            for w in &mut self.weights {
                *w /= max_w;
            }
        }
        self.tracker.record(u_core, u_mem, chosen, penalty);
        self.current = Some(chosen);
        chosen
    }

    fn preferred(&self) -> (usize, usize) {
        self.current.unwrap_or((0, 0))
    }

    fn telemetry(&self) -> &PolicyTelemetry {
        self.tracker.telemetry()
    }

    fn reset(&mut self) {
        self.weights.iter_mut().for_each(|w| *w = 1.0);
        self.rng = Pcg32::new(self.seed, 0xE3);
        self.current = None;
        self.tracker.reset();
    }

    fn snapshot(&self) -> JsonValue {
        let (rng_state, rng_inc) = self.rng.state();
        JsonValue::Obj(vec![
            ("weights".to_string(), JsonValue::f64_array(&self.weights)),
            ("rng_state".to_string(), JsonValue::u64(rng_state)),
            ("rng_inc".to_string(), JsonValue::u64(rng_inc)),
            ("current".to_string(), snap::pair(self.current)),
        ])
    }

    fn restore(&mut self, state: &JsonValue) -> Result<(), String> {
        let weights = snap::parse_f64_vec(snap::field(state, "weights")?, "weights", self.weights.len())?;
        if weights.iter().any(|&w| w < 0.0) {
            return Err("weights must be non-negative".to_string());
        }
        let rng_state = snap::parse_u64(state, "rng_state")?;
        let rng_inc = snap::parse_u64(state, "rng_inc")?;
        let current = snap::parse_pair(snap::field(state, "current")?, "current", self.n_core, self.n_mem)?;
        self.weights = weights;
        self.rng = Pcg32::from_state(rng_state, rng_inc);
        self.current = current;
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

/// UCB tuning.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct UcbParams {
    /// Exploration coefficient `c ≥ 0` of the confidence radius.
    pub c: f64,
    /// Switching-cost shaping.
    pub switching: SwitchingParams,
    /// Loss shaping (Table-I constants).
    pub loss: LossParams,
}

impl Default for UcbParams {
    fn default() -> Self {
        // Table-I losses live in [0, ~0.3] with per-arm gaps of a few
        // hundredths, so the confidence radius must be of that order —
        // the textbook c ≈ 1 (losses in [0,1]) would round-robin all 36
        // arms for thousands of intervals.
        UcbParams {
            c: 0.08,
            switching: SwitchingParams::default(),
            loss: LossParams::default(),
        }
    }
}

impl UcbParams {
    /// Non-panicking range check naming the offending field.
    pub fn try_validate(&self) -> Result<(), String> {
        if !self.c.is_finite() || self.c < 0.0 {
            return Err(format!("c must be finite and >= 0, got {}", self.c));
        }
        self.switching.try_validate()?;
        self.loss.try_validate()
    }
}

/// The UCB1-style switching-aware bandit (lower-confidence selection on
/// losses).
#[derive(Debug, Clone)]
pub struct UcbPolicy {
    name: String,
    params: UcbParams,
    model: LossModel,
    n_core: usize,
    n_mem: usize,
    counts: Vec<u64>,
    mean_loss: Vec<f64>,
    t: u64,
    current: Option<(usize, usize)>,
    tracker: DecisionTracker,
}

impl UcbPolicy {
    /// Builds the policy for an `n_core × n_mem` grid. UCB is fully
    /// deterministic — no seed needed.
    pub fn new(n_core: usize, n_mem: usize, params: UcbParams) -> Self {
        params.try_validate().expect("valid UCB params");
        let model = LossModel::new(n_core, n_mem, params.loss);
        let name = if params.switching.switch_cost > 0.0 || params.switching.hysteresis > 0.0 {
            "ucb"
        } else {
            "ucb-nosw"
        };
        UcbPolicy {
            name: name.to_string(),
            params,
            tracker: DecisionTracker::new(model.clone()),
            model,
            n_core,
            n_mem,
            counts: vec![0; n_core * n_mem],
            mean_loss: vec![0.0; n_core * n_mem],
            t: 0,
            current: None,
        }
    }

    /// Overrides the display name (builder style).
    pub fn with_name(mut self, name: impl Into<String>) -> Self {
        self.name = name.into();
        self
    }

    /// Times pair `(i, j)` has been pulled (inspection/tests).
    pub fn count(&self, i: usize, j: usize) -> u64 {
        self.counts[i * self.n_mem + j]
    }

    /// Lower-confidence index of arm `(i, j)`: `−∞` when unplayed
    /// (forced exploration), otherwise `mean − c·√(ln t / n)`.
    fn index(&self, i: usize, j: usize) -> f64 {
        let k = i * self.n_mem + j;
        if self.counts[k] == 0 {
            return f64::NEG_INFINITY;
        }
        let bonus = self.params.c * ((self.t as f64).max(1.0).ln() / self.counts[k] as f64).sqrt();
        self.mean_loss[k] - bonus
    }
}

impl FreqPolicy for UcbPolicy {
    fn name(&self) -> &str {
        &self.name
    }

    fn shape(&self) -> (usize, usize) {
        (self.n_core, self.n_mem)
    }

    fn decide(&mut self, u_core: f64, u_mem: f64, feasible: &dyn Fn(usize, usize) -> bool) -> (usize, usize) {
        if !(u_core.is_finite() && u_mem.is_finite()) {
            self.tracker.note_invalid();
            return match hold_masked(self.current.unwrap_or((0, 0)), self.n_core, self.n_mem, feasible) {
                Some(pair) => pair,
                None => {
                    self.tracker.note_empty_mask();
                    (0, 0)
                }
            };
        }
        // Challenger: minimize index + switching cost of reaching it
        // from the incumbent. Ties break toward lower levels via strict
        // `<` over the row-major scan.
        let mut best: Option<(usize, usize)> = None;
        let mut best_score = f64::INFINITY;
        for i in 0..self.n_core {
            for j in 0..self.n_mem {
                if !feasible(i, j) {
                    continue;
                }
                let mut score = self.index(i, j);
                if let Some(cur) = self.current {
                    if (i, j) != cur {
                        score += self.params.switching.switch_cost * dist_norm((i, j), cur, self.n_core, self.n_mem);
                    }
                }
                if best.is_none() || score < best_score {
                    best_score = score;
                    best = Some((i, j));
                }
            }
        }
        let Some(mut chosen) = best else {
            self.tracker.note_empty_mask();
            return (0, 0);
        };
        // Hysteresis: keep a feasible incumbent unless the challenger
        // undercuts its (penalty-free) index by the margin.
        if let Some(cur) = self.current {
            if chosen != cur
                && feasible(cur.0, cur.1)
                && best_score + self.params.switching.hysteresis >= self.index(cur.0, cur.1)
            {
                chosen = cur;
            }
        }
        let penalty = match self.current {
            Some(cur) if cur != chosen => {
                self.params.switching.switch_cost * dist_norm(chosen, cur, self.n_core, self.n_mem)
            }
            _ => 0.0,
        };
        // Learn the pulled arm's base loss (the switching cost shapes
        // selection, not the reward statistics — a pair is not worse
        // because we arrived via a reclock).
        let base = self.model.loss(chosen.0, chosen.1, u_core, u_mem);
        let k = chosen.0 * self.n_mem + chosen.1;
        self.counts[k] += 1;
        self.t += 1;
        self.mean_loss[k] += (base - self.mean_loss[k]) / self.counts[k] as f64;
        self.tracker.record(u_core, u_mem, chosen, penalty);
        self.current = Some(chosen);
        chosen
    }

    fn preferred(&self) -> (usize, usize) {
        self.current.unwrap_or((0, 0))
    }

    fn telemetry(&self) -> &PolicyTelemetry {
        self.tracker.telemetry()
    }

    fn reset(&mut self) {
        self.counts.iter_mut().for_each(|c| *c = 0);
        self.mean_loss.iter_mut().for_each(|m| *m = 0.0);
        self.t = 0;
        self.current = None;
        self.tracker.reset();
    }

    fn snapshot(&self) -> JsonValue {
        JsonValue::Obj(vec![
            ("counts".to_string(), JsonValue::u64_array(&self.counts)),
            ("mean_loss".to_string(), JsonValue::f64_array(&self.mean_loss)),
            ("t".to_string(), JsonValue::u64(self.t)),
            ("current".to_string(), snap::pair(self.current)),
        ])
    }

    fn restore(&mut self, state: &JsonValue) -> Result<(), String> {
        let counts = snap::parse_u64_vec(snap::field(state, "counts")?, "counts", self.counts.len())?;
        let mean_loss = snap::parse_f64_vec(snap::field(state, "mean_loss")?, "mean_loss", self.mean_loss.len())?;
        let t = snap::parse_u64(state, "t")?;
        if counts.iter().sum::<u64>() != t {
            return Err(format!("t = {t} does not equal the sum of counts"));
        }
        let current = snap::parse_pair(snap::field(state, "current")?, "current", self.n_core, self.n_mem)?;
        self.counts = counts;
        self.mean_loss = mean_loss;
        self.t = t;
        self.current = current;
        Ok(())
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn exp3(seed: u64) -> Exp3Policy {
        Exp3Policy::new(6, 6, Exp3Params::default(), seed)
    }

    fn ucb() -> UcbPolicy {
        UcbPolicy::new(6, 6, UcbParams::default())
    }

    #[test]
    fn as_any_downcasts_to_the_concrete_policy() {
        let policy: Box<dyn FreqPolicy> = Box::new(ucb());
        assert!(policy.as_any().downcast_ref::<UcbPolicy>().is_some());
        assert!(policy.as_any().downcast_ref::<Exp3Policy>().is_none());
    }

    const ALL: fn(usize, usize) -> bool = |_, _| true;

    #[test]
    fn bandits_never_certify_a_decision_fingerprint() {
        // Both bandits advance their state (RNG position, visit counts)
        // on *every* decision, so no idle fixed point exists; they must
        // keep the trait's `None` default and never be parked by the
        // event-driven fleet engine.
        let mut e = exp3(1);
        let mut u = ucb();
        assert_eq!(e.decision_fingerprint(), None);
        assert_eq!(u.decision_fingerprint(), None);
        e.decide(0.5, 0.5, &ALL);
        u.decide(0.5, 0.5, &ALL);
        assert_eq!(e.decision_fingerprint(), None);
        assert_eq!(u.decision_fingerprint(), None);
    }

    #[test]
    fn exp3_is_deterministic_under_a_seed() {
        let mut a = exp3(7);
        let mut b = exp3(7);
        for k in 0..200 {
            let u = (k % 10) as f64 / 10.0;
            assert_eq!(a.decide(u, 1.0 - u, &ALL), b.decide(u, 1.0 - u, &ALL));
        }
    }

    #[test]
    fn exp3_concentrates_on_the_zero_loss_pair() {
        // Stationary u = 0.6 makes (3, 3) the zero-loss arm; after
        // enough pulls it must dominate the decisions.
        let mut p = exp3(3);
        let mut hits = 0;
        for k in 0..600 {
            let pair = p.decide(0.6, 0.6, &ALL);
            if k >= 300 && pair == (3, 3) {
                hits += 1;
            }
        }
        assert!(hits > 200, "late-round (3,3) pulls: {hits}/300");
    }

    #[test]
    fn exp3_respects_the_mask_and_counts_empty() {
        let mut p = exp3(5);
        for _ in 0..50 {
            let (i, j) = p.decide(0.9, 0.9, &|i, j| i + j <= 4);
            assert!(i + j <= 4, "escaped mask: ({i},{j})");
        }
        assert_eq!(p.decide(0.9, 0.9, &|_, _| false), (0, 0));
        assert_eq!(p.telemetry().empty_mask_fallbacks, 1);
    }

    #[test]
    fn exp3_rejects_nan_without_learning() {
        let mut p = exp3(9);
        for _ in 0..20 {
            p.decide(0.5, 0.5, &ALL);
        }
        let snapshot = |p: &Exp3Policy| -> Vec<f64> {
            (0..6)
                .flat_map(|i| (0..6).map(|j| p.weight(i, j)).collect::<Vec<_>>())
                .collect()
        };
        let weights = snapshot(&p);
        let held = p.decide(f64::NAN, 0.5, &ALL);
        assert_eq!(held, p.preferred());
        let after = snapshot(&p);
        assert_eq!(weights, after, "NaN observation touched the weights");
        assert_eq!(p.telemetry().invalid_inputs, 1);
    }

    #[test]
    fn switching_penalty_reduces_exp3_switches() {
        let run = |params: Exp3Params| -> u64 {
            let mut p = Exp3Policy::new(6, 6, params, 11);
            let mut rng = greengpu_sim::Pcg32::seeded(42);
            for _ in 0..400 {
                let u = 0.55 + rng.uniform(-0.05, 0.05);
                p.decide(u, u, &ALL);
            }
            p.telemetry().switches
        };
        let with = run(Exp3Params::default());
        let without = run(Exp3Params {
            switching: SwitchingParams::none(),
            ..Exp3Params::default()
        });
        assert!(with < without, "switching-aware {with} vs ablation {without}");
    }

    #[test]
    fn ucb_explores_every_arm_then_settles() {
        // The no-penalty ablation shows the raw UCB machinery: one
        // forced pull per arm, then the zero-loss arm dominates. (The
        // switching-aware variant deliberately stays near its incumbent
        // instead — that stickiness is pinned by the switch-count test.)
        let mut p = UcbPolicy::new(
            6,
            6,
            UcbParams {
                switching: SwitchingParams::none(),
                ..UcbParams::default()
            },
        );
        for _ in 0..36 {
            p.decide(0.6, 0.6, &ALL);
        }
        for i in 0..6 {
            for j in 0..6 {
                assert_eq!(p.count(i, j), 1, "arm ({i},{j}) not explored once");
            }
        }
        // Post-exploration pulls concentrate on the low-loss region: the
        // confidence radius still cycles among the nearly-flat memory
        // levels (their loss gaps are ~0.003), but realized loss must be
        // far below the ~0.06 average of uniform play, and the matching
        // core row (umean = 0.6) must dominate the pull counts.
        let before = p.telemetry().base_loss;
        for _ in 0..200 {
            p.decide(0.6, 0.6, &ALL);
        }
        let mean_loss = (p.telemetry().base_loss - before) / 200.0;
        assert!(mean_loss < 0.03, "post-exploration mean loss {mean_loss}");
        let row_pulls = |i: usize| -> u64 { (0..6).map(|j| p.count(i, j)).sum() };
        for i in [0, 1, 2, 4, 5] {
            assert!(
                row_pulls(3) > row_pulls(i),
                "core row 3 ({}) out-pulled by row {i} ({})",
                row_pulls(3),
                row_pulls(i)
            );
        }
    }

    #[test]
    fn ucb_is_deterministic() {
        let mut a = ucb();
        let mut b = ucb();
        for k in 0..300 {
            let u = ((k * 7) % 11) as f64 / 11.0;
            assert_eq!(a.decide(u, 1.0 - u, &ALL), b.decide(u, 1.0 - u, &ALL));
        }
    }

    #[test]
    fn ucb_respects_the_mask_even_while_exploring() {
        let mut p = ucb();
        for _ in 0..80 {
            let (i, j) = p.decide(0.8, 0.2, &|i, j| i >= 2 && j <= 3);
            assert!(i >= 2 && j <= 3, "escaped mask: ({i},{j})");
        }
        assert_eq!(p.decide(0.8, 0.2, &|_, _| false), (0, 0));
        assert!(p.telemetry().empty_mask_fallbacks > 0);
    }

    #[test]
    fn switching_penalty_reduces_ucb_switches() {
        let run = |params: UcbParams| -> u64 {
            let mut p = UcbPolicy::new(6, 6, params);
            let mut rng = greengpu_sim::Pcg32::seeded(17);
            for _ in 0..400 {
                let u = 0.55 + rng.uniform(-0.08, 0.08);
                p.decide(u, u, &ALL);
            }
            p.telemetry().switches
        };
        let with = run(UcbParams::default());
        let without = run(UcbParams {
            switching: SwitchingParams::none(),
            ..UcbParams::default()
        });
        assert!(with < without, "switching-aware {with} vs ablation {without}");
    }

    #[test]
    fn reset_restores_initial_state() {
        let mut a = exp3(23);
        let mut b = exp3(23);
        for _ in 0..50 {
            a.decide(0.4, 0.7, &ALL);
        }
        a.reset();
        for k in 0..50 {
            let u = k as f64 / 50.0;
            assert_eq!(a.decide(u, u, &ALL), b.decide(u, u, &ALL));
        }
        let mut u = ucb();
        u.decide(0.5, 0.5, &ALL);
        u.reset();
        assert_eq!(u.telemetry(), &PolicyTelemetry::default());
        assert_eq!(u.count(0, 0), 0);
    }

    #[test]
    fn bad_params_are_rejected_with_the_field_name() {
        let err = Exp3Params {
            gamma: 0.0,
            ..Exp3Params::default()
        }
        .try_validate()
        .unwrap_err();
        assert!(err.contains("gamma"), "{err}");
        let err = UcbParams {
            c: f64::NAN,
            ..UcbParams::default()
        }
        .try_validate()
        .unwrap_err();
        assert!(err.contains('c'), "{err}");
        let err = SwitchingParams {
            switch_cost: -1.0,
            hysteresis: 0.0,
        }
        .try_validate()
        .unwrap_err();
        assert!(err.contains("switch_cost"), "{err}");
    }

    #[test]
    fn ablation_names_reflect_the_penalty() {
        assert_eq!(exp3(1).name(), "exp3");
        let p = Exp3Policy::new(
            6,
            6,
            Exp3Params {
                switching: SwitchingParams::none(),
                ..Exp3Params::default()
            },
            1,
        );
        assert_eq!(p.name(), "exp3-nosw");
        assert_eq!(ucb().name(), "ucb");
    }
}
