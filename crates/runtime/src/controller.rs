//! The controller interface between the runtime and the management policy.
//!
//! GreenGPU's two tiers — and every baseline the paper compares against —
//! are implemented as [`Controller`]s: the runtime calls `on_dvfs_tick` on a
//! fixed period (the frequency-scaling tier's invocation) and
//! `on_iteration_end` at every iteration boundary (the workload-division
//! tier's invocation).
//!
//! The runtime deliberately knows nothing about *how* levels are chosen:
//! inside `on_dvfs_tick` the GreenGPU controller delegates the pair
//! decision to a pluggable `FreqPolicy` (the `greengpu-policy` crate —
//! the paper's WMA, switching-aware bandits, or deadline-aware
//! selection), so every policy runs under the same sensing, actuation
//! verification, and power-cap masking.

use greengpu_hw::Platform;
use greengpu_sim::{SimDuration, SimTime};

/// Measurements handed to the division tier at an iteration boundary.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationInfo {
    /// Iteration index just completed.
    pub index: usize,
    /// CPU share `r` used in this iteration.
    pub cpu_share: f64,
    /// Time the CPU spent computing its chunk, seconds (`tc`).
    pub tc_s: f64,
    /// Time the GPU side took to finish its chunk, seconds (`tg`).
    pub tg_s: f64,
}

/// A management policy plugged into the runtime.
pub trait Controller {
    /// CPU share for the first iteration.
    fn initial_share(&self) -> f64;

    /// Invocation period of the frequency-scaling tier; `None` disables the
    /// DVFS loop entirely.
    fn dvfs_period(&self) -> Option<SimDuration>;

    /// Frequency-scaling tick: read the platform's sensors, pick levels,
    /// actuate.
    fn on_dvfs_tick(&mut self, platform: &mut Platform, now: SimTime);

    /// Division tick: decide the CPU share for the next iteration.
    fn on_iteration_end(&mut self, info: &IterationInfo, platform: &mut Platform, now: SimTime) -> f64;

    /// Serializes the controller's learner state as an opaque checkpoint
    /// string, or `None` for controllers with nothing worth saving (the
    /// default — static baselines restart for free).
    fn checkpoint(&self) -> Option<String> {
        None
    }

    /// Restores state captured by [`Controller::checkpoint`]. The default
    /// rejects every checkpoint, matching the default `checkpoint()` that
    /// never produces one.
    fn restore_checkpoint(&mut self, checkpoint: &str) -> Result<(), String> {
        let _ = checkpoint;
        Err("this controller does not support checkpoints".to_string())
    }
}

/// A do-nothing policy with a fixed division ratio — the building block of
/// the paper's static baselines (e.g. *best-performance* pins peak clocks
/// externally and runs `FixedController::gpu_only()`).
#[derive(Debug, Clone)]
pub struct FixedController {
    share: f64,
}

impl FixedController {
    /// Fixed CPU share `r` for every iteration.
    pub fn new(share: f64) -> Self {
        assert!((0.0..=1.0).contains(&share));
        FixedController { share }
    }

    /// The Rodinia default: everything on the GPU.
    pub fn gpu_only() -> Self {
        FixedController::new(0.0)
    }
}

impl Controller for FixedController {
    fn initial_share(&self) -> f64 {
        self.share
    }

    fn dvfs_period(&self) -> Option<SimDuration> {
        None
    }

    fn on_dvfs_tick(&mut self, _platform: &mut Platform, _now: SimTime) {}

    fn on_iteration_end(&mut self, _info: &IterationInfo, _platform: &mut Platform, _now: SimTime) -> f64 {
        self.share
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_controller_never_moves() {
        let mut c = FixedController::new(0.25);
        assert_eq!(c.initial_share(), 0.25);
        assert_eq!(c.dvfs_period(), None);
        let info = IterationInfo {
            index: 0,
            cpu_share: 0.25,
            tc_s: 10.0,
            tg_s: 1.0,
        };
        let mut p = Platform::default_testbed();
        assert_eq!(c.on_iteration_end(&info, &mut p, SimTime::ZERO), 0.25);
    }

    #[test]
    fn gpu_only_is_share_zero() {
        assert_eq!(FixedController::gpu_only().initial_share(), 0.0);
    }

    #[test]
    #[should_panic]
    fn out_of_range_share_panics() {
        FixedController::new(1.5);
    }
}
