//! Multi-GPU extension.
//!
//! The paper's runtime structure already anticipates several accelerators:
//! "multiple pthreads are launched in the main function. Some pthreads are
//! in charge of CUDA execution (*one pthread for one GPU*)" (§VI). This
//! module generalizes the division tier across a CPU plus any number of
//! GPUs — possibly heterogeneous ones — while reusing the same device
//! models, phase cost model, and WMA scaling per card.
//!
//! The division generalization keeps the paper's spirit: shares live on
//! the 5 % integer grid, and each iteration one step of work moves from
//! the slowest device to the fastest, so all devices approach a common
//! finish time. Functional results are unaffected by *which* device
//! computes a chunk (the workloads' split/merge is associative), so the
//! engine executes the kernels functionally through the existing
//! single-split path.

use crate::config::{CommMode, RunConfig};
use greengpu_hw::{CpuModel, CpuSpec, GpuModel, GpuSpec, PowerMeter, Smi};
use greengpu_sim::{SimDuration, SimTime};
use greengpu_workloads::{phase_cpu_time_s, phase_gpu_timing, GpuPhase, Workload};

/// Remaining-time snap threshold (see the single-GPU engine).
const EPS_S: f64 = 1e-7;

/// Share grid: 5 % units, like the paper's division step.
pub const SHARE_UNITS: u32 = 20;

/// A multi-accelerator testbed: one CPU plus `gpus.len()` cards, each with
/// its own supply meter.
pub struct MultiPlatform {
    cpu: CpuModel,
    cpu_meter: PowerMeter,
    gpus: Vec<GpuModel>,
    gpu_meters: Vec<PowerMeter>,
}

impl MultiPlatform {
    /// Builds a platform from GPU specs (all cards start at peak clocks)
    /// and a CPU spec at its peak P-state.
    pub fn new(gpu_specs: Vec<GpuSpec>, cpu_spec: CpuSpec) -> Self {
        assert!(!gpu_specs.is_empty(), "need at least one GPU");
        let gpus: Vec<GpuModel> = gpu_specs
            .into_iter()
            .map(|spec| {
                let (c, m) = (spec.core_levels_mhz.len() - 1, spec.mem_levels_mhz.len() - 1);
                GpuModel::new(spec, c, m)
            })
            .collect();
        let gpu_meters = (0..gpus.len())
            .map(|i| PowerMeter::new(format!("GPU{i} supply")))
            .collect();
        let cpu_lvl = cpu_spec.levels_mhz.len() - 1;
        let mut p = MultiPlatform {
            cpu: CpuModel::new(cpu_spec, cpu_lvl),
            cpu_meter: PowerMeter::new("box / CPU side"),
            gpus,
            gpu_meters,
        };
        p.refresh(SimTime::ZERO);
        p
    }

    /// A homogeneous testbed of `n` identical default cards.
    pub fn homogeneous(n: usize) -> Self {
        MultiPlatform::new(
            (0..n).map(|_| greengpu_hw::calib::geforce_8800_gtx()).collect(),
            greengpu_hw::calib::phenom_ii_x2(),
        )
    }

    /// Number of GPUs.
    pub fn gpu_count(&self) -> usize {
        self.gpus.len()
    }

    /// GPU `i`.
    pub fn gpu(&self, i: usize) -> &GpuModel {
        &self.gpus[i]
    }

    /// The CPU model.
    pub fn cpu(&self) -> &CpuModel {
        &self.cpu
    }

    fn refresh(&mut self, at: SimTime) {
        for (gpu, meter) in self.gpus.iter().zip(&mut self.gpu_meters) {
            meter.record(at, gpu.current_power_w());
        }
        self.cpu_meter.record(at, self.cpu.current_power_w());
    }

    fn set_gpu_activity(&mut self, at: SimTime, i: usize, u_core: f64, u_mem: f64) {
        self.gpus[i].set_activity(at, u_core, u_mem);
        self.refresh(at);
    }

    fn set_gpu_levels(&mut self, at: SimTime, i: usize, core: usize, mem: usize) {
        self.gpus[i].set_levels(at, core, mem);
        self.refresh(at);
    }

    fn set_cpu_activity_split(&mut self, at: SimTime, sensor: f64, power_util: f64, cores: usize) {
        self.cpu.set_activity_split(at, sensor, power_util, cores);
        self.refresh(at);
    }

    /// Energy of GPU `i` over a window, joules.
    pub fn gpu_energy_j(&self, i: usize, from: SimTime, to: SimTime) -> f64 {
        self.gpu_meters[i].energy_j(from, to)
    }

    /// CPU-side energy over a window, joules.
    pub fn cpu_energy_j(&self, from: SimTime, to: SimTime) -> f64 {
        self.cpu_meter.energy_j(from, to)
    }

    /// Whole-node energy over a window, joules.
    pub fn total_energy_j(&self, from: SimTime, to: SimTime) -> f64 {
        let gpus: f64 = (0..self.gpus.len()).map(|i| self.gpu_energy_j(i, from, to)).sum();
        gpus + self.cpu_energy_j(from, to)
    }
}

/// Per-iteration record of a multi-device run.
#[derive(Debug, Clone, PartialEq)]
pub struct MultiIteration {
    /// Iteration index.
    pub index: usize,
    /// Work shares: `[cpu, gpu0, gpu1, …]` (each a multiple of 5 %).
    pub shares: Vec<f64>,
    /// Completion time of each device's chunk, seconds (same order).
    pub times_s: Vec<f64>,
    /// Iteration start.
    pub start: SimTime,
    /// Iteration end (all devices done).
    pub end: SimTime,
}

/// Result of a multi-device run.
pub struct MultiReport {
    /// Total virtual wall time.
    pub total_time: SimDuration,
    /// Whole-node energy, joules.
    pub total_energy_j: f64,
    /// Per-iteration rows.
    pub iterations: Vec<MultiIteration>,
    /// Functional digest (when enabled).
    pub digest: f64,
    /// Final platform with traces.
    pub platform: MultiPlatform,
}

/// Generalized division state: integer 5 %-units per device,
/// `[cpu, gpu0, …]`, summing to [`SHARE_UNITS`].
#[derive(Debug, Clone)]
pub struct MultiDivision {
    units: Vec<u32>,
    /// Last observed seconds-per-unit for each device (None until the
    /// device has held work), for extrapolating idle devices.
    unit_cost: Vec<Option<f64>>,
}

impl MultiDivision {
    /// Starts from an explicit unit allocation (must sum to
    /// [`SHARE_UNITS`]).
    pub fn new(units: Vec<u32>) -> Self {
        assert!(units.len() >= 2, "need CPU plus at least one GPU");
        assert_eq!(
            units.iter().sum::<u32>(),
            SHARE_UNITS,
            "units must sum to {SHARE_UNITS}"
        );
        let unit_cost = vec![None; units.len()];
        MultiDivision { units, unit_cost }
    }

    /// An even split across the GPUs with no CPU work.
    pub fn gpus_even(n_gpus: usize) -> Self {
        let mut units = vec![0u32; n_gpus + 1];
        let per = SHARE_UNITS / n_gpus as u32;
        let mut rem = SHARE_UNITS - per * n_gpus as u32;
        for u in units.iter_mut().skip(1) {
            *u = per + u32::from(rem > 0);
            rem = rem.saturating_sub(1);
        }
        MultiDivision::new(units)
    }

    /// Current shares as fractions.
    pub fn shares(&self) -> Vec<f64> {
        self.units
            .iter()
            .map(|&u| f64::from(u) / f64::from(SHARE_UNITS))
            .collect()
    }

    /// One balancing step: take one unit from the slowest device and give
    /// it to whichever other device minimizes the predicted worst-case
    /// completion time; hold when no move strictly improves it (the
    /// single-GPU oscillation safeguard, generalized to N devices).
    pub fn update(&mut self, times_s: &[f64]) -> Vec<f64> {
        assert_eq!(times_s.len(), self.units.len());
        // Remember observed per-unit costs for idle-device extrapolation.
        for (i, &t) in times_s.iter().enumerate() {
            if self.units[i] > 0 {
                self.unit_cost[i] = Some(t / self.units[i] as f64);
            }
        }
        // Slowest donor must actually hold work; an all-idle split (no
        // device holds a unit) keeps the current shares unchanged.
        let Some(donor) = (0..self.units.len())
            .filter(|&i| self.units[i] > 0)
            .max_by(|&a, &b| times_s[a].total_cmp(&times_s[b]))
        else {
            return self.shares();
        };
        let current_worst = times_s[donor];
        // Linear per-unit extrapolation; an idle device uses its last
        // observed per-unit cost, or (optimistically, first time) the
        // donor's.
        let pred = |i: usize, du: i64| -> f64 {
            let u = self.units[i] as i64;
            if u == 0 {
                let per_unit = self.unit_cost[i].unwrap_or(times_s[donor] / self.units[donor] as f64);
                return per_unit * du.max(0) as f64;
            }
            times_s[i] * (u + du) as f64 / u as f64
        };
        let donor_after = pred(donor, -1);
        let best = (0..self.units.len())
            .filter(|&j| j != donor)
            .map(|j| (j, donor_after.max(pred(j, 1))))
            .min_by(|a, b| a.1.total_cmp(&b.1));
        if let Some((receiver, predicted_worst)) = best {
            if predicted_worst < current_worst * (1.0 - 1e-9) {
                self.units[donor] -= 1;
                self.units[receiver] += 1;
            }
        }
        self.shares()
    }
}

/// Configuration of a multi-device run.
pub struct MultiConfig {
    /// Underlying run config (comm mode, functional, spin power).
    pub run: RunConfig,
    /// Frequency-scaling interval for the per-GPU WMA loops; `None`
    /// disables scaling (clocks stay at peak).
    pub dvfs_period: Option<SimDuration>,
}

impl Default for MultiConfig {
    fn default() -> Self {
        MultiConfig {
            run: RunConfig::sweep(),
            dvfs_period: None,
        }
    }
}

/// A per-GPU WMA hook: the engine calls this at each DVFS tick for each
/// card. Implemented by `greengpu`'s scaler; a no-op closure disables
/// scaling.
pub trait MultiScaler {
    /// Observe GPU `i`'s windowed utilizations and return the levels to
    /// enforce.
    fn observe(&mut self, gpu_index: usize, u_core: f64, u_mem: f64) -> (usize, usize);
}

/// No-op scaler (keeps current clocks).
pub struct NoScaler;

impl MultiScaler for NoScaler {
    fn observe(&mut self, _gpu_index: usize, u_core: f64, _u_mem: f64) -> (usize, usize) {
        let _ = u_core;
        (usize::MAX, usize::MAX) // sentinel: engine skips actuation
    }
}

/// Runs `workload` across the platform, balancing shares each iteration.
///
/// The CPU takes `shares[0]`, GPU `i` takes `shares[i+1]`; all GPU chunks
/// execute the same phase sequence scaled by their share.
pub fn run_multi(
    mut platform: MultiPlatform,
    workload: &mut dyn Workload,
    mut division: MultiDivision,
    config: MultiConfig,
    scaler: &mut dyn MultiScaler,
) -> MultiReport {
    let n_gpus = platform.gpu_count();
    let mut t = SimTime::ZERO;
    let mut iterations = Vec::with_capacity(workload.iterations());
    let mut smis: Vec<Smi> = (0..n_gpus).map(|_| Smi::new()).collect();
    let mut next_dvfs = config.dvfs_period.map(|p| SimTime::ZERO + p);

    for k in 0..workload.iterations() {
        let shares = division.shares();
        let phases = workload.phases(k);
        // Device work: CPU slice list + per-GPU phase lists.
        let cpu_slices: Vec<_> = phases
            .iter()
            .map(|p| p.cpu.scale(shares[0]))
            .filter(|c| c.ops > 0.0 || c.bytes > 0.0)
            .collect();
        let mut gpu_phases: Vec<Vec<GpuPhase>> = Vec::with_capacity(n_gpus);
        for g in 0..n_gpus {
            let share = shares.get(g + 1).copied().unwrap_or(0.0);
            gpu_phases.push(
                phases
                    .iter()
                    .map(|p| p.gpu.scale(share))
                    .filter(|p| p.ops > 0.0 || p.bytes > 0.0 || p.host_floor_s > 0.0)
                    .collect(),
            );
        }
        // Progress state: (segment index, completed fraction, busy seconds).
        let mut gpu_state: Vec<(usize, f64, f64)> = vec![(0, 0.0, 0.0); n_gpus];
        let mut cpu_state = (0usize, 0.0f64, 0.0f64);
        let iter_start = t;

        loop {
            // DVFS ticks.
            if let (Some(period), Some(next)) = (config.dvfs_period, next_dvfs) {
                if t >= next {
                    for (g, smi) in smis.iter_mut().enumerate() {
                        let reading = smi.poll_gpu(platform.gpu(g), t);
                        let (c, m) = scaler.observe(g, reading.u_core, reading.u_mem);
                        if c != usize::MAX {
                            platform.set_gpu_levels(t, g, c, m);
                        }
                    }
                    next_dvfs = Some(next + period);
                }
            }

            // Refresh activities.
            for g in 0..n_gpus {
                match gpu_phases[g].get(gpu_state[g].0) {
                    Some(phase) => {
                        let timing = phase_gpu_timing(
                            phase,
                            platform.gpu(g).spec(),
                            platform.gpu(g).core().current_mhz(),
                            platform.gpu(g).mem().current_mhz(),
                        );
                        platform.set_gpu_activity(t, g, timing.u_core, timing.u_mem);
                    }
                    None => platform.set_gpu_activity(t, g, 0.0, 0.0),
                }
            }
            let cpu_done = cpu_state.0 >= cpu_slices.len();
            let gpus_done = (0..n_gpus).all(|g| gpu_state[g].0 >= gpu_phases[g].len());
            let n_cores = platform.cpu().spec().n_cores;
            if !cpu_done {
                platform.set_cpu_activity_split(t, 1.0, 1.0, n_cores);
            } else if !gpus_done {
                match config.run.comm_mode {
                    CommMode::SynchronizedSpin => {
                        platform.set_cpu_activity_split(t, 1.0, config.run.spin_power_util, n_cores)
                    }
                    CommMode::Async => {
                        platform.set_cpu_activity_split(t, config.run.idle_cpu_util, config.run.idle_cpu_util, n_cores)
                    }
                }
            } else {
                platform.set_cpu_activity_split(t, 0.0, 0.0, 0);
                break;
            }

            // Plan the next event.
            let mut dt = f64::INFINITY;
            let mut durations: Vec<Option<f64>> = Vec::with_capacity(n_gpus + 1);
            for g in 0..n_gpus {
                let d = gpu_phases[g].get(gpu_state[g].0).map(|phase| {
                    phase_gpu_timing(
                        phase,
                        platform.gpu(g).spec(),
                        platform.gpu(g).core().current_mhz(),
                        platform.gpu(g).mem().current_mhz(),
                    )
                    .wall_s
                });
                if let Some(d) = d {
                    dt = dt.min((1.0 - gpu_state[g].1) * d);
                }
                durations.push(d);
            }
            let cpu_dur = cpu_slices
                .get(cpu_state.0)
                .map(|s| phase_cpu_time_s(s, platform.cpu().spec(), platform.cpu().domain().current_mhz()));
            if let Some(d) = cpu_dur {
                dt = dt.min((1.0 - cpu_state.1) * d);
            }
            if let Some(next) = next_dvfs {
                dt = dt.min(next.saturating_since(t).as_secs_f64());
            }
            assert!(dt.is_finite(), "no pending event");
            let dt_q = SimDuration::from_secs_f64(dt).max(SimDuration::from_micros(1));
            let dt_s = dt_q.as_secs_f64();

            // Advance.
            for g in 0..n_gpus {
                if let Some(d) = durations[g] {
                    let st = &mut gpu_state[g];
                    st.2 += dt_s;
                    st.1 += if d <= EPS_S { 1.0 } else { dt_s / d };
                    if st.1 >= 1.0 - EPS_S {
                        st.0 += 1;
                        st.1 = 0.0;
                    }
                }
            }
            if let Some(d) = cpu_dur {
                cpu_state.2 += dt_s;
                cpu_state.1 += if d <= EPS_S { 1.0 } else { dt_s / d };
                if cpu_state.1 >= 1.0 - EPS_S {
                    cpu_state.0 += 1;
                    cpu_state.1 = 0.0;
                }
            }
            t += dt_q;
        }

        if config.run.functional {
            workload.execute(k, shares[0]);
        }
        let mut times = vec![cpu_state.2];
        times.extend(gpu_state.iter().map(|s| s.2));
        iterations.push(MultiIteration {
            index: k,
            shares: shares.clone(),
            times_s: times.clone(),
            start: iter_start,
            end: t,
        });
        division.update(&times);
    }

    let digest = if config.run.functional { workload.digest() } else { 0.0 };
    MultiReport {
        total_time: t - SimTime::ZERO,
        total_energy_j: platform.total_energy_j(SimTime::ZERO, t),
        iterations,
        digest,
        platform,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use greengpu_workloads::kmeans::KMeans;
    use greengpu_workloads::nbody::NBody;

    fn run_kmeans(n_gpus: usize) -> MultiReport {
        let platform = MultiPlatform::homogeneous(n_gpus);
        let mut wl = KMeans::paper(1);
        let division = MultiDivision::gpus_even(n_gpus);
        run_multi(platform, &mut wl, division, MultiConfig::default(), &mut NoScaler)
    }

    #[test]
    fn shares_always_partition_the_work() {
        let report = run_kmeans(2);
        for it in &report.iterations {
            let sum: f64 = it.shares.iter().sum();
            assert!((sum - 1.0).abs() < 1e-9, "shares sum {sum}");
            assert!(it.shares.iter().all(|&s| s >= 0.0));
        }
    }

    #[test]
    fn real_run_shares_stay_on_the_grid() {
        let report = run_kmeans(3);
        for it in &report.iterations {
            for &s in &it.shares {
                let units = s * f64::from(SHARE_UNITS);
                assert!((units - units.round()).abs() < 1e-9, "share {s} is off the 5% grid");
            }
        }
    }

    #[test]
    fn two_gpus_finish_faster_than_one() {
        let one = run_kmeans(1);
        let two = run_kmeans(2);
        let speedup = one.total_time.as_secs_f64() / two.total_time.as_secs_f64();
        assert!(speedup > 1.5, "2-GPU speedup {speedup}");
    }

    #[test]
    fn homogeneous_gpus_converge_to_symmetric_shares() {
        let report = run_kmeans(2);
        let last = report.iterations.last().unwrap();
        let (g1, g2) = (last.shares[1], last.shares[2]);
        assert!((g1 - g2).abs() <= 0.05 + 1e-9, "asymmetric steady state: {g1} vs {g2}");
        // The CPU ends up with a small but nonzero share, as in the
        // single-GPU case (its balance point shrinks with more GPUs).
        assert!(last.shares[0] <= 0.20);
    }

    #[test]
    fn heterogeneous_gpus_get_proportional_shares() {
        // Card 1 is a down-clocked variant (roughly 70 % of the default's
        // clocks). nbody's wall time is roofline-bound (thin host floor),
        // so the slower card must converge to a visibly smaller share.
        let mut slow = greengpu_hw::calib::geforce_8800_gtx();
        slow.core_levels_mhz = slow.core_levels_mhz.iter().map(|f| f * 0.7).collect();
        slow.mem_levels_mhz = slow.mem_levels_mhz.iter().map(|f| f * 0.7).collect();
        slow.name = "down-clocked".to_string();
        let platform = MultiPlatform::new(
            vec![greengpu_hw::calib::geforce_8800_gtx(), slow],
            greengpu_hw::calib::phenom_ii_x2(),
        );
        let mut wl = NBody::paper(1);
        let report = run_multi(
            platform,
            &mut wl,
            MultiDivision::gpus_even(2),
            MultiConfig::default(),
            &mut NoScaler,
        );
        let last = report.iterations.last().unwrap();
        assert!(
            last.shares[1] > last.shares[2] + 0.05,
            "fast card should take visibly more: {:?}",
            last.shares
        );
        // Completion times approach each other.
        let times = &last.times_s;
        let worst = times.iter().cloned().fold(f64::MIN, f64::max);
        let best_busy = times.iter().cloned().filter(|&t| t > 0.0).fold(f64::INFINITY, f64::min);
        assert!(worst / best_busy < 1.6, "imbalance {}", worst / best_busy);
    }

    #[test]
    fn host_bound_workload_is_insensitive_to_card_speed() {
        // kmeans on this testbed is host-pipeline-bound: a down-clocked
        // card finishes in the same wall time, so the balancer correctly
        // leaves the shares symmetric.
        let mut slow = greengpu_hw::calib::geforce_8800_gtx();
        slow.core_levels_mhz = slow.core_levels_mhz.iter().map(|f| f * 0.7).collect();
        slow.mem_levels_mhz = slow.mem_levels_mhz.iter().map(|f| f * 0.7).collect();
        let platform = MultiPlatform::new(
            vec![greengpu_hw::calib::geforce_8800_gtx(), slow],
            greengpu_hw::calib::phenom_ii_x2(),
        );
        let report = run_multi(
            platform,
            &mut KMeans::paper(1),
            MultiDivision::gpus_even(2),
            MultiConfig::default(),
            &mut NoScaler,
        );
        let last = report.iterations.last().unwrap();
        assert!(
            (last.shares[1] - last.shares[2]).abs() <= 0.10 + 1e-9,
            "host-bound shares should stay near-symmetric: {:?}",
            last.shares
        );
    }

    #[test]
    fn functional_digest_matches_single_device_run() {
        let platform = MultiPlatform::homogeneous(2);
        let mut wl = KMeans::small(3);
        let cfg = MultiConfig {
            run: RunConfig::default(),
            ..MultiConfig::default()
        };
        let division = MultiDivision::new(vec![4, 8, 8]);
        let report = run_multi(platform, &mut wl, division, cfg, &mut NoScaler);
        // Reference: the same split fractions on the single-device path.
        let mut reference = KMeans::small(3);
        for (k, it) in report.iterations.iter().enumerate() {
            reference.execute(k, it.shares[0]);
        }
        let rel = ((report.digest - reference.digest()) / reference.digest()).abs();
        assert!(rel < 1e-12, "digest drifted {rel}");
    }

    #[test]
    fn division_update_moves_work_to_the_fastest() {
        let mut d = MultiDivision::new(vec![2, 9, 9]);
        // GPU1 is much slower than GPU0.
        let shares = d.update(&[1.0, 1.0, 3.0]);
        assert!(shares[2] < 9.0 / 20.0, "slow GPU should shed work: {shares:?}");
    }

    #[test]
    fn idle_devices_cannot_donate() {
        let mut d = MultiDivision::new(vec![0, 10, 10]);
        // CPU has no work and reports zero time — it must not go negative.
        let shares = d.update(&[0.0, 5.0, 5.1]);
        assert!(shares[0] >= 0.0);
        assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "units must sum")]
    fn bad_unit_sum_panics() {
        MultiDivision::new(vec![1, 2, 3]);
    }

    #[test]
    fn gpus_even_distributes_all_units() {
        for n in 1..5 {
            let d = MultiDivision::gpus_even(n);
            let shares = d.shares();
            assert_eq!(shares.len(), n + 1);
            assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-12);
            assert_eq!(shares[0], 0.0);
        }
    }
}

#[cfg(test)]
mod multi_proptests {
    use super::*;
    use greengpu_workloads::kmeans::KMeans;
    use proptest::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn division_units_always_partition(times in proptest::collection::vec(0.0..100.0f64, 3..6),
                                           rounds in 1usize..50) {
            let n = times.len();
            let mut d = MultiDivision::gpus_even(n - 1);
            for _ in 0..rounds {
                let shares = d.update(&times);
                prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                prop_assert!(shares.iter().all(|&s| (0.0..=1.0).contains(&s)));
            }
        }

        #[test]
        fn shares_stay_on_the_five_percent_grid(times in proptest::collection::vec(0.01..100.0f64, 3..6),
                                                rounds in 1usize..60) {
            let n = times.len();
            let mut d = MultiDivision::gpus_even(n - 1);
            for _ in 0..rounds {
                let shares = d.update(&times);
                prop_assert!((shares.iter().sum::<f64>() - 1.0).abs() < 1e-9);
                for &s in &shares {
                    let u = s * f64::from(SHARE_UNITS);
                    prop_assert!((u - u.round()).abs() < 1e-9, "share {s} off the 5% grid");
                }
            }
        }

        #[test]
        fn convergence_toward_equal_finish_is_monotone(speeds in proptest::collection::vec(0.2..5.0f64, 2..5)) {
            // Linear testbed where every device starts with work, so every
            // per-unit cost is observed from round one and the balancer's
            // one-step predictions are exact. The oscillation safeguard
            // (move only on strict predicted improvement) then implies the
            // worst finish time never increases, and the allocation closes
            // in on the equal-finish-time point.
            let n = speeds.len();
            let mut units = vec![SHARE_UNITS / n as u32; n];
            let mut rem = SHARE_UNITS - units.iter().sum::<u32>();
            for u in units.iter_mut() {
                if rem == 0 { break; }
                *u += 1;
                rem -= 1;
            }
            let mut d = MultiDivision::new(units);
            let times = |shares: &[f64]| -> Vec<f64> {
                shares.iter().zip(&speeds).map(|(s, v)| s / v).collect()
            };
            let mut shares = d.shares();
            let mut prev_worst = f64::INFINITY;
            for _ in 0..(3 * SHARE_UNITS as usize) {
                let t = times(&shares);
                let worst = t.iter().cloned().fold(f64::MIN, f64::max);
                prop_assert!(
                    worst <= prev_worst * (1.0 + 1e-9),
                    "worst finish time regressed: {worst} > {prev_worst}"
                );
                prev_worst = worst.min(prev_worst);
                shares = d.update(&t);
            }
            // Fixed point: the busiest device is within ~2 share units of
            // the ideal equal-finish allocation.
            let t = times(&shares);
            let worst = t.iter().cloned().fold(f64::MIN, f64::max);
            let ideal = 1.0 / speeds.iter().sum::<f64>();
            let unit_cost_max = 1.0 / (f64::from(SHARE_UNITS) * speeds.iter().cloned().fold(f64::MAX, f64::min));
            prop_assert!(
                worst <= ideal + 2.0 * unit_cost_max,
                "worst {worst} vs ideal {ideal} with speeds {speeds:?}"
            );
        }

        #[test]
        fn balancer_settles_on_linear_devices(speeds in proptest::collection::vec(0.2..5.0f64, 2..5)) {
            // Linear testbed: device i takes share/speed seconds. The
            // balancer must reach a fixed point within 3·SHARE_UNITS
            // rounds and the worst/best busy-time ratio must be bounded.
            let n = speeds.len();
            let mut d = MultiDivision::gpus_even(n - 1);
            let times = |shares: &[f64]| -> Vec<f64> {
                shares.iter().zip(&speeds).map(|(s, v)| s / v).collect()
            };
            let mut shares = d.shares();
            let mut last = shares.clone();
            let mut stable = 0;
            for _ in 0..(3 * SHARE_UNITS as usize) {
                shares = d.update(&times(&shares));
                if shares == last {
                    stable += 1;
                    if stable >= 3 {
                        break;
                    }
                } else {
                    stable = 0;
                }
                last = shares.clone();
            }
            prop_assert!(stable >= 3, "never settled: {shares:?}");
            // At the fixed point, the busiest device exceeds an ideal
            // balanced allocation by at most ~2 share units of its time.
            let t = times(&shares);
            let worst = t.iter().cloned().fold(f64::MIN, f64::max);
            let total_speed: f64 = speeds.iter().sum();
            let ideal = 1.0 / total_speed;
            prop_assert!(worst <= ideal + 2.0 / (SHARE_UNITS as f64 * speeds.iter().cloned().fold(f64::MAX, f64::min)),
                "worst {worst} vs ideal {ideal} with speeds {speeds:?}");
        }

        #[test]
        fn multi_runs_conserve_energy_accounting(n_gpus in 1usize..4, cpu_units in 0u32..8) {
            let gpu_units = SHARE_UNITS - cpu_units;
            let mut units = vec![cpu_units];
            let per = gpu_units / n_gpus as u32;
            for g in 0..n_gpus {
                units.push(if g == 0 { gpu_units - per * (n_gpus as u32 - 1) } else { per });
            }
            let division = MultiDivision::new(units);
            let mut wl = KMeans::small(5);
            let report = run_multi(
                MultiPlatform::homogeneous(n_gpus),
                &mut wl,
                division,
                MultiConfig::default(),
                &mut NoScaler,
            );
            let end = SimTime::ZERO + report.total_time;
            let meters = report.platform.total_energy_j(SimTime::ZERO, end);
            prop_assert!((report.total_energy_j - meters).abs() < 1e-6);
            prop_assert!(report.total_time.as_secs_f64() > 0.0);
        }
    }
}
