//! The pthread analog.
//!
//! The paper's implementation (§VI) launches pthreads from `main`: one
//! thread drives the CUDA device while the others execute the CPU kernel on
//! the host cores, and the two sides' partial results are merged at the
//! iteration barrier. This module reproduces that structure literally with
//! std scoped threads, so examples and tests can run real split
//! executions concurrently (functional correctness is wall-clock-parallel
//! even though *simulated* time comes from the cost model).
//!
//! All timing goes through the [`Clock`] seam: [`run_split`] measures with
//! the sanctioned [`WallClock`], while [`run_split_with`] accepts any
//! clock — tests pass a [`crate::clock::ManualClock`] and get
//! byte-identical telemetry on every run.

use std::sync::Mutex;

use crate::clock::{Clock, WallClock};

/// Per-side timing telemetry collected from the worker threads.
#[derive(Debug, Default)]
pub struct SplitTelemetry {
    events: Mutex<Vec<(String, f64)>>,
}

impl SplitTelemetry {
    /// Creates an empty sink.
    pub fn new() -> Self {
        SplitTelemetry::default()
    }

    /// Records a labeled duration (seconds). A poisoned sink (a worker
    /// panicked mid-record) drops the sample instead of propagating.
    pub fn record(&self, label: &str, seconds: f64) {
        if let Ok(mut events) = self.events.lock() {
            events.push((label.to_string(), seconds));
        }
    }

    /// Snapshot of all recorded events (empty if the sink was poisoned).
    pub fn events(&self) -> Vec<(String, f64)> {
        self.events.lock().map(|events| events.clone()).unwrap_or_default()
    }
}

/// Runs the CPU-side and GPU-side closures on two concurrent threads (the
/// pthread structure), timing each side with the sanctioned wall clock,
/// and returns both results. Deterministic callers use
/// [`run_split_with`] and a manual clock instead.
///
/// # Example
/// ```
/// use greengpu_runtime::parallel::{run_split, SplitTelemetry};
///
/// let telemetry = SplitTelemetry::new();
/// let (a, b) = run_split(&telemetry, || 2 + 2, || 3 * 3);
/// assert_eq!((a, b), (4, 9));
/// assert_eq!(telemetry.events().len(), 2);
/// ```
pub fn run_split<A, B, FA, FB>(telemetry: &SplitTelemetry, cpu_side: FA, gpu_side: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    run_split_with(&WallClock::new(), telemetry, cpu_side, gpu_side)
}

/// [`run_split`] with an explicit [`Clock`] — the deterministic seam.
///
/// # Example
/// ```
/// use greengpu_runtime::clock::ManualClock;
/// use greengpu_runtime::parallel::{run_split_with, SplitTelemetry};
///
/// let clock = ManualClock::new(0.0);
/// let telemetry = SplitTelemetry::new();
/// let ((), ()) = run_split_with(&clock, &telemetry, || clock.advance_s(2.0), || ());
/// assert!(telemetry.events().iter().any(|(l, s)| l == "cpu" && *s == 2.0));
/// ```
pub fn run_split_with<C, A, B, FA, FB>(clock: &C, telemetry: &SplitTelemetry, cpu_side: FA, gpu_side: FB) -> (A, B)
where
    C: Clock,
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    std::thread::scope(|scope| {
        let cpu_handle = scope.spawn(|| {
            let t0 = clock.now_s();
            let out = cpu_side();
            telemetry.record("cpu", clock.now_s() - t0);
            out
        });
        let t0 = clock.now_s();
        let gpu_out = gpu_side();
        telemetry.record("gpu", clock.now_s() - t0);
        let cpu_out = match cpu_handle.join() {
            Ok(out) => out,
            // Re-raise the worker's own panic payload instead of
            // replacing it with a second panic message.
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (cpu_out, gpu_out)
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn split_runs_both_sides_and_merges() {
        let telemetry = SplitTelemetry::new();
        let xs: Vec<u64> = (0..1000).collect();
        let (a, b) = run_split(
            &telemetry,
            || xs[..500].iter().sum::<u64>(),
            || xs[500..].iter().sum::<u64>(),
        );
        assert_eq!(a + b, xs.iter().sum::<u64>());
        let events = telemetry.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|(_, s)| *s >= 0.0));
    }

    #[test]
    fn manual_clock_gives_deterministic_telemetry() {
        let clock = ManualClock::new(0.0);
        let telemetry = SplitTelemetry::new();
        run_split_with(&clock, &telemetry, || clock.advance_s(2.0), || clock.advance_s(0.5));
        let mut events = telemetry.events();
        events.sort_by(|a, b| a.0.cmp(&b.0));
        // Both sides observe every advance made before their own end-read,
        // so each label's figure is exact and reproducible — but the two
        // sides race on *which* advances land first, so assert the
        // deterministic invariants instead of exact per-side splits.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, "cpu");
        assert_eq!(events[1].0, "gpu");
        assert!(clock.now_s() == 2.5);
    }
}
