//! The pthread analog.
//!
//! The paper's implementation (§VI) launches pthreads from `main`: one
//! thread drives the CUDA device while the others execute the CPU kernel on
//! the host cores, and the two sides' partial results are merged at the
//! iteration barrier. This module reproduces that structure literally with
//! std scoped threads, so examples and tests can run real split
//! executions concurrently (functional correctness is wall-clock-parallel
//! even though *simulated* time comes from the cost model).

use std::sync::Mutex;
use std::time::Instant;

/// Wall-clock telemetry collected from the worker threads.
#[derive(Debug, Default)]
pub struct SplitTelemetry {
    events: Mutex<Vec<(String, f64)>>,
}

impl SplitTelemetry {
    /// Creates an empty sink.
    pub fn new() -> Self {
        SplitTelemetry::default()
    }

    /// Records a labeled wall-clock duration (seconds).
    pub fn record(&self, label: &str, seconds: f64) {
        self.events.lock().expect("telemetry lock").push((label.to_string(), seconds));
    }

    /// Snapshot of all recorded events.
    pub fn events(&self) -> Vec<(String, f64)> {
        self.events.lock().expect("telemetry lock").clone()
    }
}

/// Runs the CPU-side and GPU-side closures on two concurrent threads (the
/// pthread structure), recording each side's wall-clock time, and returns
/// both results.
///
/// # Example
/// ```
/// use greengpu_runtime::parallel::{run_split, SplitTelemetry};
///
/// let telemetry = SplitTelemetry::new();
/// let (a, b) = run_split(&telemetry, || 2 + 2, || 3 * 3);
/// assert_eq!((a, b), (4, 9));
/// assert_eq!(telemetry.events().len(), 2);
/// ```
pub fn run_split<A, B, FA, FB>(telemetry: &SplitTelemetry, cpu_side: FA, gpu_side: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    std::thread::scope(|scope| {
        let cpu_handle = scope.spawn(|| {
            let t0 = Instant::now();
            let out = cpu_side();
            telemetry.record("cpu", t0.elapsed().as_secs_f64());
            out
        });
        let t0 = Instant::now();
        let gpu_out = gpu_side();
        telemetry.record("gpu", t0.elapsed().as_secs_f64());
        let cpu_out = cpu_handle.join().expect("cpu-side thread panicked");
        (cpu_out, gpu_out)
    })
}

/// Splits `items` into a CPU chunk of `round(n·cpu_share)` items and a GPU
/// chunk with the rest — the index arithmetic every divisible workload
/// uses.
pub fn split_index(n: usize, cpu_share: f64) -> usize {
    ((n as f64) * cpu_share.clamp(0.0, 1.0)).round() as usize
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_runs_both_sides() {
        let telemetry = SplitTelemetry::new();
        let data: Vec<u64> = (0..10_000).collect();
        let split = split_index(data.len(), 0.3);
        let (cpu_sum, gpu_sum) = run_split(
            &telemetry,
            || data[..split].iter().sum::<u64>(),
            || data[split..].iter().sum::<u64>(),
        );
        assert_eq!(cpu_sum + gpu_sum, data.iter().sum::<u64>());
        let labels: Vec<String> = telemetry.events().into_iter().map(|(l, _)| l).collect();
        assert!(labels.contains(&"cpu".to_string()) && labels.contains(&"gpu".to_string()));
    }

    #[test]
    fn split_index_boundaries() {
        assert_eq!(split_index(100, 0.0), 0);
        assert_eq!(split_index(100, 1.0), 100);
        assert_eq!(split_index(100, 0.5), 50);
        assert_eq!(split_index(100, -2.0), 0);
        assert_eq!(split_index(100, 7.0), 100);
    }

    #[test]
    fn telemetry_durations_are_positive() {
        let telemetry = SplitTelemetry::new();
        run_split(&telemetry, || std::hint::black_box(1 + 1), || std::hint::black_box(2 + 2));
        for (_, secs) in telemetry.events() {
            assert!(secs >= 0.0);
        }
    }

    #[test]
    fn merged_result_is_split_invariant() {
        let data: Vec<f64> = (0..5_000).map(|i| (i as f64).sqrt()).collect();
        let reference: f64 = data.iter().sum();
        for share in [0.0, 0.2, 0.5, 0.9, 1.0] {
            let telemetry = SplitTelemetry::new();
            let split = split_index(data.len(), share);
            let (a, b) = run_split(
                &telemetry,
                || data[..split].iter().sum::<f64>(),
                || data[split..].iter().sum::<f64>(),
            );
            assert!(((a + b) - reference).abs() < 1e-9);
        }
    }
}
