//! The pthread analog.
//!
//! The paper's implementation (§VI) launches pthreads from `main`: one
//! thread drives the CUDA device while the others execute the CPU kernel on
//! the host cores, and the two sides' partial results are merged at the
//! iteration barrier. This module reproduces that structure literally with
//! std scoped threads, so examples and tests can run real split
//! executions concurrently (functional correctness is wall-clock-parallel
//! even though *simulated* time comes from the cost model).
//!
//! All timing goes through the [`Clock`] seam: [`run_split`] measures with
//! the sanctioned [`WallClock`], while [`run_split_with`] accepts any
//! clock — tests pass a [`crate::clock::ManualClock`] and get
//! byte-identical telemetry on every run.

use std::sync::Mutex;

use crate::clock::{Clock, WallClock};

/// Per-side timing telemetry collected from the worker threads.
#[derive(Debug, Default)]
pub struct SplitTelemetry {
    events: Mutex<Vec<(String, f64)>>,
}

impl SplitTelemetry {
    /// Creates an empty sink.
    pub fn new() -> Self {
        SplitTelemetry::default()
    }

    /// Records a labeled duration (seconds). A poisoned sink (a worker
    /// panicked mid-record) drops the sample instead of propagating.
    pub fn record(&self, label: &str, seconds: f64) {
        if let Ok(mut events) = self.events.lock() {
            events.push((label.to_string(), seconds));
        }
    }

    /// Snapshot of all recorded events (empty if the sink was poisoned).
    pub fn events(&self) -> Vec<(String, f64)> {
        self.events.lock().map(|events| events.clone()).unwrap_or_default()
    }
}

/// Runs the CPU-side and GPU-side closures on two concurrent threads (the
/// pthread structure), timing each side with the sanctioned wall clock,
/// and returns both results. Deterministic callers use
/// [`run_split_with`] and a manual clock instead.
///
/// # Example
/// ```
/// use greengpu_runtime::parallel::{run_split, SplitTelemetry};
///
/// let telemetry = SplitTelemetry::new();
/// let (a, b) = run_split(&telemetry, || 2 + 2, || 3 * 3);
/// assert_eq!((a, b), (4, 9));
/// assert_eq!(telemetry.events().len(), 2);
/// ```
pub fn run_split<A, B, FA, FB>(telemetry: &SplitTelemetry, cpu_side: FA, gpu_side: FB) -> (A, B)
where
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    run_split_with(&WallClock::new(), telemetry, cpu_side, gpu_side)
}

/// [`run_split`] with an explicit [`Clock`] — the deterministic seam.
///
/// # Example
/// ```
/// use greengpu_runtime::clock::ManualClock;
/// use greengpu_runtime::parallel::{run_split_with, SplitTelemetry};
///
/// let clock = ManualClock::new(0.0);
/// let telemetry = SplitTelemetry::new();
/// let ((), ()) = run_split_with(&clock, &telemetry, || clock.advance_s(2.0), || ());
/// assert!(telemetry.events().iter().any(|(l, s)| l == "cpu" && *s == 2.0));
/// ```
pub fn run_split_with<C, A, B, FA, FB>(clock: &C, telemetry: &SplitTelemetry, cpu_side: FA, gpu_side: FB) -> (A, B)
where
    C: Clock,
    A: Send,
    B: Send,
    FA: FnOnce() -> A + Send,
    FB: FnOnce() -> B + Send,
{
    std::thread::scope(|scope| {
        let cpu_handle = scope.spawn(|| {
            let t0 = clock.now_s();
            let out = cpu_side();
            telemetry.record("cpu", clock.now_s() - t0);
            out
        });
        let t0 = clock.now_s();
        let gpu_out = gpu_side();
        telemetry.record("gpu", clock.now_s() - t0);
        let cpu_out = match cpu_handle.join() {
            Ok(out) => out,
            // Re-raise the worker's own panic payload instead of
            // replacing it with a second panic message.
            Err(payload) => std::panic::resume_unwind(payload),
        };
        (cpu_out, gpu_out)
    })
}

/// One unit of ticketed work handed to a [`run_ticketed`] worker.
///
/// The single-threaded sequencer assigns tickets *before* any worker
/// runs: monotonic indices in item order, each with a private RNG seed
/// drawn sequentially from one `SplitMix64` stream rooted at the
/// caller's `seed_root`. Seeds therefore depend only on
/// `(seed_root, index)` — never on worker count or scheduling — which is
/// what makes a ticketed computation bit-reproducible across 1..N lanes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Ticket {
    /// Commit position: results are returned in ascending ticket order
    /// regardless of which lane computed them when.
    pub index: usize,
    /// This ticket's private seed for any randomized work.
    pub seed: u64,
}

/// Deterministic ticketed fan-out over `items` (the cluster tier's
/// parallel fleet engine is the primary caller): a sequencer derives one
/// [`Ticket`] per item, `workers` scoped threads each take a strided
/// lane (lane `k` computes items `k, k + workers, ...` against the
/// shared immutable borrow), and a single-threaded committer returns the
/// results sorted back into ticket order. The output is bit-identical
/// for every `workers >= 1`, including the inline `workers <= 1` path.
///
/// Lane wall-times land in `telemetry` (labels `lane0..laneN-1`);
/// deterministic callers use [`run_ticketed_with`] and a manual clock.
///
/// # Example
/// ```
/// use greengpu_runtime::parallel::{run_ticketed, SplitTelemetry};
///
/// let telemetry = SplitTelemetry::new();
/// let items: Vec<u64> = (0..100).collect();
/// let out = run_ticketed(&telemetry, 4, 7, &items, |t, x| x * 2 + (t.index as u64));
/// assert_eq!(out.len(), 100);
/// assert_eq!(out[3], 9);
/// ```
pub fn run_ticketed<T, R, F>(telemetry: &SplitTelemetry, workers: usize, seed_root: u64, items: &[T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(Ticket, &T) -> R + Sync,
{
    run_ticketed_with(&WallClock::new(), telemetry, workers, seed_root, items, f)
}

/// [`run_ticketed`] with an explicit [`Clock`] — the deterministic seam.
pub fn run_ticketed_with<C, T, R, F>(
    clock: &C,
    telemetry: &SplitTelemetry,
    workers: usize,
    seed_root: u64,
    items: &[T],
    f: F,
) -> Vec<R>
where
    C: Clock,
    T: Sync,
    R: Send,
    F: Fn(Ticket, &T) -> R + Sync,
{
    // Sequencer: tickets exist before any worker runs, so the seed
    // stream is independent of lane scheduling.
    let mut stream = greengpu_sim::SplitMix64::new(seed_root);
    let tickets: Vec<Ticket> = (0..items.len())
        .map(|index| Ticket {
            index,
            seed: stream.next_u64(),
        })
        .collect();
    if workers <= 1 || items.len() <= 1 {
        // Inline path — the reference ordering the lanes must reproduce.
        let t0 = clock.now_s();
        let out = tickets.iter().zip(items).map(|(&t, item)| f(t, item)).collect();
        telemetry.record("lane0", clock.now_s() - t0);
        return out;
    }
    let lanes = workers.min(items.len());
    let mut computed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..lanes)
            .map(|lane| {
                let f = &f;
                let tickets = &tickets;
                scope.spawn(move || {
                    let t0 = clock.now_s();
                    let mut out: Vec<(usize, R)> = Vec::with_capacity(items.len() / lanes + 1);
                    let mut idx = lane;
                    while idx < items.len() {
                        out.push((idx, f(tickets[idx], &items[idx])));
                        idx += lanes;
                    }
                    telemetry.record(&format!("lane{lane}"), clock.now_s() - t0);
                    out
                })
            })
            .collect();
        let mut all: Vec<(usize, R)> = Vec::with_capacity(items.len());
        for handle in handles {
            match handle.join() {
                Ok(mut lane_out) => all.append(&mut lane_out),
                // Re-raise the worker's own panic payload instead of
                // replacing it with a second panic message.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    // Committer: back into ticket order, single-threaded.
    computed.sort_by_key(|&(index, _)| index);
    computed.into_iter().map(|(_, result)| result).collect()
}

/// [`run_ticketed`] over *mutable* items: each worker owns a disjoint
/// contiguous chunk of `items` (safe mutable parallelism — no two lanes
/// can alias), computes `f(ticket, &mut item)` for its chunk, and the
/// committer returns the per-item results in ticket order. Ticket
/// seeds are identical to [`run_ticketed`]'s: drawn sequentially from
/// `seed_root` by index, independent of `workers`. Because each item is
/// touched by exactly one lane and results are committed in index
/// order, the mutations and the output are bit-identical for every
/// `workers >= 1`.
pub fn run_ticketed_mut<T, R, F>(
    telemetry: &SplitTelemetry,
    workers: usize,
    seed_root: u64,
    items: &mut [T],
    f: F,
) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(Ticket, &mut T) -> R + Sync,
{
    run_ticketed_mut_with(&WallClock::new(), telemetry, workers, seed_root, items, f)
}

/// [`run_ticketed_mut`] with an explicit [`Clock`] — the deterministic
/// seam.
pub fn run_ticketed_mut_with<C, T, R, F>(
    clock: &C,
    telemetry: &SplitTelemetry,
    workers: usize,
    seed_root: u64,
    items: &mut [T],
    f: F,
) -> Vec<R>
where
    C: Clock,
    T: Send,
    R: Send,
    F: Fn(Ticket, &mut T) -> R + Sync,
{
    let mut stream = greengpu_sim::SplitMix64::new(seed_root);
    let tickets: Vec<Ticket> = (0..items.len())
        .map(|index| Ticket {
            index,
            seed: stream.next_u64(),
        })
        .collect();
    if workers <= 1 || items.len() <= 1 {
        let t0 = clock.now_s();
        let out = tickets
            .iter()
            .zip(items.iter_mut())
            .map(|(&t, item)| f(t, item))
            .collect();
        telemetry.record("lane0", clock.now_s() - t0);
        return out;
    }
    let lanes = workers.min(items.len());
    let total = items.len();
    // Contiguous chunk per lane, sizes differing by at most one — the
    // split_at_mut chain is what lets safe code hand each thread its own
    // exclusive slice.
    let base = total / lanes;
    let extra = total % lanes;
    let mut computed: Vec<(usize, R)> = std::thread::scope(|scope| {
        let mut handles = Vec::with_capacity(lanes);
        let mut rest = items;
        let mut start = 0usize;
        for lane in 0..lanes {
            let take = base + usize::from(lane < extra);
            let (chunk, tail) = rest.split_at_mut(take);
            rest = tail;
            let chunk_start = start;
            start += take;
            let f = &f;
            let tickets = &tickets;
            handles.push(scope.spawn(move || {
                let t0 = clock.now_s();
                let mut out: Vec<(usize, R)> = Vec::with_capacity(chunk.len());
                for (offset, item) in chunk.iter_mut().enumerate() {
                    let index = chunk_start + offset;
                    out.push((index, f(tickets[index], item)));
                }
                telemetry.record(&format!("lane{lane}"), clock.now_s() - t0);
                out
            }));
        }
        let mut all: Vec<(usize, R)> = Vec::with_capacity(total);
        for handle in handles {
            match handle.join() {
                Ok(mut lane_out) => all.append(&mut lane_out),
                // Re-raise the worker's own panic payload instead of
                // replacing it with a second panic message.
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
        all
    });
    computed.sort_by_key(|&(index, _)| index);
    computed.into_iter().map(|(_, result)| result).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn split_runs_both_sides_and_merges() {
        let telemetry = SplitTelemetry::new();
        let xs: Vec<u64> = (0..1000).collect();
        let (a, b) = run_split(
            &telemetry,
            || xs[..500].iter().sum::<u64>(),
            || xs[500..].iter().sum::<u64>(),
        );
        assert_eq!(a + b, xs.iter().sum::<u64>());
        let events = telemetry.events();
        assert_eq!(events.len(), 2);
        assert!(events.iter().all(|(_, s)| *s >= 0.0));
    }

    #[test]
    fn ticketed_mut_mutations_and_output_match_across_worker_counts() {
        let reference: (Vec<u64>, Vec<u64>) = {
            let mut items: Vec<u64> = (0..101).collect();
            let telemetry = SplitTelemetry::new();
            let out = run_ticketed_mut(&telemetry, 1, 13, &mut items, |t, x| {
                *x = x.wrapping_mul(31) ^ t.seed;
                *x >> 3
            });
            (items, out)
        };
        for workers in [2usize, 3, 5, 8] {
            let mut items: Vec<u64> = (0..101).collect();
            let telemetry = SplitTelemetry::new();
            let out = run_ticketed_mut(&telemetry, workers, 13, &mut items, |t, x| {
                *x = x.wrapping_mul(31) ^ t.seed;
                *x >> 3
            });
            assert_eq!((items, out), reference, "workers={workers}");
        }
    }

    #[test]
    fn ticketed_output_is_identical_across_worker_counts() {
        let items: Vec<u64> = (0..257).collect();
        let reference: Vec<u64> = {
            let telemetry = SplitTelemetry::new();
            run_ticketed(&telemetry, 1, 42, &items, |t, x| t.seed ^ (x * 3))
        };
        for workers in [2usize, 3, 4, 8, 64] {
            let telemetry = SplitTelemetry::new();
            let out = run_ticketed(&telemetry, workers, 42, &items, |t, x| t.seed ^ (x * 3));
            assert_eq!(out, reference, "workers={workers}");
        }
    }

    #[test]
    fn ticket_seeds_depend_only_on_root_and_index() {
        let items = [(); 16];
        let telemetry = SplitTelemetry::new();
        let seeds_a = run_ticketed(&telemetry, 4, 9, &items, |t, ()| (t.index, t.seed));
        let seeds_b = run_ticketed(&telemetry, 7, 9, &items, |t, ()| (t.index, t.seed));
        assert_eq!(seeds_a, seeds_b);
        // And they match the sequencer's own stream.
        let mut stream = greengpu_sim::SplitMix64::new(9);
        for (i, (index, seed)) in seeds_a.iter().enumerate() {
            assert_eq!(*index, i);
            assert_eq!(*seed, stream.next_u64());
        }
        let seeds_c = run_ticketed(&telemetry, 4, 10, &items, |t, ()| t.seed);
        assert!(seeds_a.iter().map(|(_, s)| *s).ne(seeds_c.into_iter()));
    }

    #[test]
    fn ticketed_handles_empty_and_tiny_inputs() {
        let telemetry = SplitTelemetry::new();
        let none: Vec<u32> = run_ticketed(&telemetry, 8, 1, &[] as &[u32], |_, x| *x);
        assert!(none.is_empty());
        let one = run_ticketed(&telemetry, 8, 1, &[5u32], |_, x| x + 1);
        assert_eq!(one, vec![6]);
    }

    #[test]
    fn ticketed_records_one_telemetry_event_per_lane() {
        let clock = ManualClock::new(0.0);
        let telemetry = SplitTelemetry::new();
        let items: Vec<u32> = (0..40).collect();
        let out = run_ticketed_with(&clock, &telemetry, 4, 0, &items, |_, x| *x);
        assert_eq!(out, items);
        let mut labels: Vec<String> = telemetry.events().into_iter().map(|(l, _)| l).collect();
        labels.sort();
        assert_eq!(labels, vec!["lane0", "lane1", "lane2", "lane3"]);
    }

    #[test]
    fn manual_clock_gives_deterministic_telemetry() {
        let clock = ManualClock::new(0.0);
        let telemetry = SplitTelemetry::new();
        run_split_with(&clock, &telemetry, || clock.advance_s(2.0), || clock.advance_s(0.5));
        let mut events = telemetry.events();
        events.sort_by(|a, b| a.0.cmp(&b.0));
        // Both sides observe every advance made before their own end-read,
        // so each label's figure is exact and reproducible — but the two
        // sides race on *which* advances land first, so assert the
        // deterministic invariants instead of exact per-side splits.
        assert_eq!(events.len(), 2);
        assert_eq!(events[0].0, "cpu");
        assert_eq!(events[1].0, "gpu");
        assert!(clock.now_s() == 2.5);
    }
}
