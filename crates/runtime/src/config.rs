//! Run configuration.

use greengpu_sim::SimDuration;

/// How the CPU side waits for the GPU (paper §VII-A).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CommMode {
    /// Synchronized communication: the CPU spins at 100 % utilization while
    /// waiting on the GPU — the benchmark implementation limitation the
    /// paper observes (it defeats the ondemand governor and motivates the
    /// Fig. 6c emulation).
    SynchronizedSpin,
    /// Asynchronous communication: the waiting CPU idles at near-zero
    /// utilization, letting the governor throttle it.
    Async,
}

/// Configuration of one simulated run.
#[derive(Debug, Clone)]
pub struct RunConfig {
    /// CPU-GPU wait behaviour.
    pub comm_mode: CommMode,
    /// Whether to execute the functional kernels (real results) alongside
    /// the timing simulation. Disable for pure cost-model sweeps.
    pub functional: bool,
    /// Residual CPU utilization while idle in [`CommMode::Async`].
    pub idle_cpu_util: f64,
    /// Power-relevant activity of the spin-wait loop in
    /// [`CommMode::SynchronizedSpin`]: the loop keeps all cores 100 % busy
    /// to the sensor but executes no FP work, so it draws somewhat less
    /// than real computation (0.75 of the dynamic component).
    pub spin_power_util: f64,
    /// GPU reclock stall: seconds the GPU pipeline stalls whenever the
    /// controller actually changes a frequency level (the
    /// `nvidia-settings` actuation is not free on real cards). Default 0
    /// (the paper's traces show no visible stall at its 3 s interval);
    /// the `ablations` bench sweeps it.
    pub reclock_stall_s: f64,
    /// Safety cap on simulation events per run.
    pub max_events: u64,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            comm_mode: CommMode::SynchronizedSpin,
            functional: true,
            idle_cpu_util: 0.05,
            spin_power_util: 0.75,
            reclock_stall_s: 0.0,
            max_events: 10_000_000,
        }
    }
}

impl RunConfig {
    /// The paper's testbed behaviour (synchronized spin) without functional
    /// kernel execution — used by large parameter sweeps.
    pub fn sweep() -> Self {
        RunConfig {
            functional: false,
            ..RunConfig::default()
        }
    }

    /// Asynchronous-communication variant.
    pub fn with_async_comm(mut self) -> Self {
        self.comm_mode = CommMode::Async;
        self
    }
}

/// The paper's utilization/meter sampling period (nvidia-smi poll and
/// Wattsup report at 1 Hz).
pub fn sample_period() -> SimDuration {
    SimDuration::from_secs(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_matches_paper_testbed() {
        let c = RunConfig::default();
        assert_eq!(c.comm_mode, CommMode::SynchronizedSpin);
        assert!(c.functional);
    }

    #[test]
    fn sweep_disables_functional() {
        assert!(!RunConfig::sweep().functional);
    }

    #[test]
    fn async_builder_sets_mode() {
        assert_eq!(RunConfig::default().with_async_comm().comm_mode, CommMode::Async);
    }
}
