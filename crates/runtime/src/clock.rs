//! The one sanctioned time source.
//!
//! Every simulated path in the workspace takes time from [`SimTime`]
//! bookkeeping; nothing in a seeded crate may read the wall clock
//! directly (`greengpu-lint`'s `determinism` rule enforces this). The
//! few places that genuinely measure host execution — the pthread-analog
//! in [`crate::parallel`] — go through the [`Clock`] seam instead, so
//! tests and replays can substitute a [`ManualClock`] and get
//! byte-identical telemetry.
//!
//! [`SimTime`]: greengpu_sim::SimTime

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonic time source, seconds from an arbitrary epoch.
///
/// `Sync` because the pthread-analog shares one clock across both worker
/// threads.
pub trait Clock: Sync {
    /// Seconds elapsed since this clock's epoch.
    fn now_s(&self) -> f64;
}

/// The real wall clock. This is the **only** sanctioned wall-clock read
/// in the workspace — everything else must take a [`Clock`] (or simulated
/// time) as a parameter.
#[derive(Debug)]
pub struct WallClock {
    // lint:allow(determinism) the single sanctioned wall-clock source; everything else takes a Clock parameter
    origin: std::time::Instant,
}

impl WallClock {
    /// A clock whose epoch is the moment of construction.
    pub fn new() -> Self {
        WallClock {
            // lint:allow(determinism) the single sanctioned wall-clock read behind the Clock seam
            origin: std::time::Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        WallClock::new()
    }
}

impl Clock for WallClock {
    fn now_s(&self) -> f64 {
        self.origin.elapsed().as_secs_f64()
    }
}

/// A deterministic clock that only moves when told to. Thread-safe so the
/// worker closures in [`crate::parallel::run_split_with`] can advance it
/// mid-run; stores the reading as `f64` bits in an atomic.
#[derive(Debug, Default)]
pub struct ManualClock {
    bits: AtomicU64,
}

impl ManualClock {
    /// A clock reading `start_s`.
    pub fn new(start_s: f64) -> Self {
        ManualClock {
            bits: AtomicU64::new(start_s.to_bits()),
        }
    }

    /// Moves the clock forward by `ds` seconds (negative deltas are
    /// clamped to zero — the clock is monotonic).
    pub fn advance_s(&self, ds: f64) {
        let ds = ds.max(0.0);
        // A compare-exchange loop keeps concurrent advances lossless.
        let mut cur = self.bits.load(Ordering::SeqCst);
        loop {
            let next = (f64::from_bits(cur) + ds).to_bits();
            match self
                .bits
                .compare_exchange(cur, next, Ordering::SeqCst, Ordering::SeqCst)
            {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

impl Clock for ManualClock {
    fn now_s(&self) -> f64 {
        f64::from_bits(self.bits.load(Ordering::SeqCst))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_advances_deterministically() {
        let c = ManualClock::new(10.0);
        assert_eq!(c.now_s(), 10.0);
        c.advance_s(2.5);
        assert_eq!(c.now_s(), 12.5);
        c.advance_s(-1.0); // clamped
        assert_eq!(c.now_s(), 12.5);
    }

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock::new();
        let a = c.now_s();
        let b = c.now_s();
        assert!(b >= a && a >= 0.0);
    }
}
