//! Run results.

use greengpu_hw::Platform;
use greengpu_sim::{SimDuration, SimTime};

/// Per-iteration measurements (one row of the Fig. 7 / Fig. 8 traces).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct IterationRecord {
    /// Iteration index.
    pub index: usize,
    /// CPU share `r` used.
    pub cpu_share: f64,
    /// CPU chunk execution time, seconds (`tc`).
    pub tc_s: f64,
    /// GPU chunk execution time, seconds (`tg`).
    pub tg_s: f64,
    /// Iteration start on the virtual clock.
    pub start: SimTime,
    /// Iteration end (both sides finished).
    pub end: SimTime,
    /// Whole-system energy consumed during the iteration, joules.
    pub energy_j: f64,
}

impl IterationRecord {
    /// Wall time of the iteration, seconds.
    pub fn duration_s(&self) -> f64 {
        (self.end - self.start).as_secs_f64()
    }
}

/// The result of one simulated run.
pub struct RunReport {
    /// Total virtual wall time.
    pub total_time: SimDuration,
    /// Meter 2 (GPU card) energy, joules.
    pub gpu_energy_j: f64,
    /// Meter 1 (box / CPU side) energy, joules.
    pub cpu_energy_j: f64,
    /// Per-iteration rows.
    pub iterations: Vec<IterationRecord>,
    /// Functional result digest (0 when functional execution is disabled).
    pub digest: f64,
    /// Seconds the GPU side spent with work in flight.
    pub gpu_busy_s: f64,
    /// Seconds the CPU side spent computing its chunks.
    pub cpu_busy_s: f64,
    /// Intervals during which the CPU was spin-waiting on the GPU
    /// (synchronized-communication mode) — the Fig. 6c emulation replaces
    /// the CPU energy in these windows.
    pub spin_intervals: Vec<(SimTime, SimTime)>,
    /// The final platform, with all frequency/utilization/power traces.
    pub platform: Platform,
}

impl RunReport {
    /// Whole-system energy, joules.
    pub fn total_energy_j(&self) -> f64 {
        self.gpu_energy_j + self.cpu_energy_j
    }

    /// Mean system power over the run, watts.
    pub fn mean_power_w(&self) -> f64 {
        let t = self.total_time.as_secs_f64();
        // lint:allow(float_eq) empty-run guard; a zero-duration run yields exactly 0.0
        if t == 0.0 {
            0.0
        } else {
            self.total_energy_j() / t
        }
    }

    /// Total seconds spent spin-waiting.
    pub fn spin_seconds(&self) -> f64 {
        self.spin_intervals.iter().map(|&(a, b)| (b - a).as_secs_f64()).sum()
    }

    /// Actual CPU-side energy burned inside the spin-wait intervals, joules.
    pub fn spin_energy_j(&self) -> f64 {
        self.spin_intervals
            .iter()
            .map(|&(a, b)| self.platform.cpu_meter().energy_j(a, b))
            .sum()
    }

    /// The paper's Fig. 6c emulation: whole-system energy with the CPU's
    /// spin-wait energy replaced by the CPU parked at its lowest frequency
    /// level ("we replace the CPU energy with the average CPU energy at the
    /// lowest frequency level").
    pub fn emulated_cpu_throttle_energy_j(&self) -> f64 {
        let parked_w = self.platform.cpu().lowest_level_idle_power_w();
        self.total_energy_j() - self.spin_energy_j() + self.spin_seconds() * parked_w
    }

    /// GPU energy with the idle floor removed — the paper's Fig. 6b
    /// "dynamic energy" (idle power at the given reference levels times the
    /// run duration is subtracted).
    pub fn gpu_dynamic_energy_j(&self, idle_power_w: f64) -> f64 {
        self.gpu_energy_j - idle_power_w * self.total_time.as_secs_f64()
    }

    /// Energy-delay product (J·s) — the standard efficiency metric when
    /// both energy and performance matter, which is GreenGPU's stated
    /// objective ("save energy with only negligible performance
    /// degradation").
    pub fn edp(&self) -> f64 {
        self.total_energy_j() * self.total_time.as_secs_f64()
    }

    /// Energy-delay² product (J·s²) — weighs performance more heavily.
    pub fn ed2p(&self) -> f64 {
        self.edp() * self.total_time.as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(start_s: u64, end_s: u64) -> IterationRecord {
        IterationRecord {
            index: 0,
            cpu_share: 0.2,
            tc_s: 1.0,
            tg_s: 2.0,
            start: SimTime::from_secs(start_s),
            end: SimTime::from_secs(end_s),
            energy_j: 100.0,
        }
    }

    #[test]
    fn iteration_duration() {
        assert_eq!(record(2, 5).duration_s(), 3.0);
    }

    #[test]
    fn report_energy_accounting() {
        let report = RunReport {
            total_time: SimDuration::from_secs(10),
            gpu_energy_j: 700.0,
            cpu_energy_j: 300.0,
            iterations: vec![record(0, 10)],
            digest: 0.0,
            gpu_busy_s: 8.0,
            cpu_busy_s: 2.0,
            spin_intervals: vec![],
            platform: Platform::default_testbed(),
        };
        assert_eq!(report.total_energy_j(), 1000.0);
        assert!((report.mean_power_w() - 100.0).abs() < 1e-12);
        assert_eq!(report.spin_seconds(), 0.0);
        assert_eq!(report.spin_energy_j(), 0.0);
        // Without spin, the emulation changes nothing.
        assert_eq!(report.emulated_cpu_throttle_energy_j(), 1000.0);
        // Dynamic energy subtracts the idle floor.
        assert!((report.gpu_dynamic_energy_j(50.0) - 200.0).abs() < 1e-12);
    }

    #[test]
    fn edp_metrics_compose() {
        let report = RunReport {
            total_time: SimDuration::from_secs(10),
            gpu_energy_j: 700.0,
            cpu_energy_j: 300.0,
            iterations: vec![],
            digest: 0.0,
            gpu_busy_s: 0.0,
            cpu_busy_s: 0.0,
            spin_intervals: vec![],
            platform: Platform::default_testbed(),
        };
        assert_eq!(report.edp(), 10_000.0);
        assert_eq!(report.ed2p(), 100_000.0);
    }

    #[test]
    fn spin_emulation_replaces_energy() {
        let mut platform = Platform::default_testbed();
        platform.set_cpu_activity(SimTime::ZERO, 1.0, 2);
        let report = RunReport {
            total_time: SimDuration::from_secs(10),
            gpu_energy_j: 0.0,
            cpu_energy_j: platform.cpu_energy_j(SimTime::ZERO, SimTime::from_secs(10)),
            iterations: vec![],
            digest: 0.0,
            gpu_busy_s: 0.0,
            cpu_busy_s: 0.0,
            spin_intervals: vec![(SimTime::from_secs(2), SimTime::from_secs(6))],
            platform,
        };
        let emulated = report.emulated_cpu_throttle_energy_j();
        assert!(emulated < report.total_energy_j(), "parking the CPU must save energy");
        let spin_s = report.spin_seconds();
        assert_eq!(spin_s, 4.0);
    }
}
