//! # greengpu-runtime — the heterogeneous execution runtime
//!
//! The paper's execution structure (§VI): the main program launches
//! pthreads — one driving the CUDA device, the rest pinned to CPU cores —
//! wraps the CPU and GPU implementations of each kernel behind a common
//! interface, and re-invokes the kernels each iteration with the data sizes
//! chosen by the workload-division unit.
//!
//! This crate is the simulated analog. [`HeteroRuntime`] executes a
//! [`greengpu_workloads::Workload`] on a [`greengpu_hw::Platform`]:
//!
//! * each iteration's phase costs are split by the controller's CPU share
//!   `r` (CPU gets `r`, GPU gets `1-r`);
//! * both sides drain their work concurrently in virtual time, with GPU
//!   frequency changes re-planning the remaining work mid-flight;
//! * device activity (busy fractions) is recorded into the platform's
//!   utilization traces and power meters at every segment boundary;
//! * a [`Controller`] is invoked on a fixed DVFS tick (the frequency
//!   scaling tier) and at every iteration boundary (the division tier);
//! * the functional kernel actually executes with the same split, so the
//!   numerical results are real.
//!
//! [`parallel`] contains the literal pthread-analog (std scoped
//! threads + a shared telemetry sink) used by examples and tests to run
//! real CPU-side chunks concurrently. [`multi`] extends the division tier
//! across several (possibly heterogeneous) GPUs — the "one pthread for
//! one GPU" structure §VI anticipates.

#![forbid(unsafe_code)]

pub mod clock;
pub mod config;
pub mod controller;
pub mod engine;
pub mod multi;
pub mod parallel;
pub mod report;

pub use clock::{Clock, ManualClock, WallClock};
pub use config::{CommMode, RunConfig};
pub use controller::{Controller, FixedController, IterationInfo};
pub use engine::HeteroRuntime;
pub use report::{IterationRecord, RunReport};
