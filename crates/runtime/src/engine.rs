//! The virtual-time execution engine.
//!
//! Advances an iteration's split work on both devices concurrently,
//! re-planning remaining work whenever a controller changes a frequency
//! level mid-flight (the piecewise drain that makes the paper's Fig. 5
//! trace meaningful), and recording device activity into the platform's
//! traces at every segment boundary.

use crate::config::{CommMode, RunConfig};
use crate::controller::{Controller, IterationInfo};
use crate::report::{IterationRecord, RunReport};
use greengpu_hw::Platform;
use greengpu_sim::{SimDuration, SimTime};
use greengpu_workloads::{phase_cpu_time_s, phase_gpu_timing, CpuSlice, GpuPhase, Workload};

/// Remaining-time snap threshold: segments within 0.1 µs of completion are
/// treated as complete, keeping the µs-quantized clock from stalling.
const EPS_S: f64 = 1e-7;

/// Progress through a sequence of segments. `frac` is the completed
/// fraction of the current segment.
struct SideExec<S> {
    segs: Vec<S>,
    idx: usize,
    frac: f64,
    busy_s: f64,
}

impl<S> SideExec<S> {
    fn new(segs: Vec<S>) -> Self {
        SideExec {
            segs,
            idx: 0,
            frac: 0.0,
            busy_s: 0.0,
        }
    }

    fn done(&self) -> bool {
        self.idx >= self.segs.len()
    }

    fn current(&self) -> Option<&S> {
        self.segs.get(self.idx)
    }

    /// Advances `dt` seconds given the current segment's total duration,
    /// returning `true` when that advance completed the segment.
    fn advance(&mut self, dt: f64, seg_duration: f64) -> bool {
        if self.done() {
            return false;
        }
        self.busy_s += dt;
        if seg_duration <= EPS_S {
            self.frac = 1.0;
        } else {
            self.frac += dt / seg_duration;
        }
        if self.frac >= 1.0 - EPS_S {
            self.idx += 1;
            self.frac = 0.0;
            true
        } else {
            false
        }
    }

    /// Skips over zero-duration segments.
    fn skip_empty(&mut self, duration_of: impl Fn(&S) -> f64) {
        while let Some(seg) = self.segs.get(self.idx) {
            if duration_of(seg) <= EPS_S {
                self.idx += 1;
                self.frac = 0.0;
            } else {
                break;
            }
        }
    }
}

/// The heterogeneous runtime: owns the platform for the duration of a run.
///
/// ```
/// use greengpu_hw::Platform;
/// use greengpu_runtime::{FixedController, HeteroRuntime, RunConfig};
/// use greengpu_workloads::kmeans::KMeans;
///
/// let mut workload = KMeans::small(1);
/// let mut controller = FixedController::new(0.25); // static 25 % CPU share
/// let report = HeteroRuntime::new(Platform::best_performance_testbed(), RunConfig::default())
///     .run(&mut workload, &mut controller);
/// assert_eq!(report.iterations.len(), 5);
/// assert!(report.total_energy_j() > 0.0);
/// ```
pub struct HeteroRuntime {
    platform: Platform,
    config: RunConfig,
}

impl HeteroRuntime {
    /// Creates a runtime over a platform.
    pub fn new(platform: Platform, config: RunConfig) -> Self {
        HeteroRuntime { platform, config }
    }

    /// Runs `workload` to completion under `controller`, consuming the
    /// runtime and returning the report (with the platform and all traces).
    pub fn run(mut self, workload: &mut dyn Workload, controller: &mut dyn Controller) -> RunReport {
        let divisible = workload.profile().divisible;
        let mut share = if divisible { controller.initial_share() } else { 0.0 };
        let dvfs_period = controller.dvfs_period();
        let mut next_dvfs = dvfs_period.map(|p| SimTime::ZERO + p);

        let mut t = SimTime::ZERO;
        let mut events: u64 = 0;
        let mut iterations = Vec::with_capacity(workload.iterations());
        let mut spin_intervals: Vec<(SimTime, SimTime)> = Vec::new();
        let mut spin_start: Option<SimTime> = None;
        let mut gpu_busy_total = 0.0;
        let mut cpu_busy_total = 0.0;

        for k in 0..workload.iterations() {
            let phases = workload.phases(k);
            let gpu_share = 1.0 - share;
            let mut gpu_segs = Vec::with_capacity(phases.len());
            let mut cpu_segs = Vec::with_capacity(phases.len());
            for p in &phases {
                let g = p.gpu.scale(gpu_share);
                if g.ops > 0.0 || g.bytes > 0.0 || g.host_floor_s > 0.0 {
                    gpu_segs.push(g);
                }
                let c = p.cpu.scale(share);
                if c.ops > 0.0 || c.bytes > 0.0 {
                    cpu_segs.push(c);
                }
            }
            let mut gpu = SideExec::new(gpu_segs);
            let mut cpu = SideExec::new(cpu_segs);
            let mut gpu_stall_s = 0.0f64;
            let iter_start = t;

            loop {
                // Fire any due DVFS ticks before planning the next step.
                if let (Some(period), Some(next)) = (dvfs_period, next_dvfs) {
                    if t >= next {
                        let before = (
                            self.platform.gpu().core().current_level(),
                            self.platform.gpu().mem().current_level(),
                        );
                        controller.on_dvfs_tick(&mut self.platform, t);
                        let after = (
                            self.platform.gpu().core().current_level(),
                            self.platform.gpu().mem().current_level(),
                        );
                        if after != before && !gpu.done() {
                            // The card stalls while reclocking.
                            gpu_stall_s += self.config.reclock_stall_s;
                        }
                        next_dvfs = Some(next + period);
                    }
                }

                // Refresh recorded device activity for the current state
                // (a reclocking card draws idle power: activity forced 0).
                if gpu_stall_s > EPS_S {
                    self.platform.set_gpu_activity(t, 0.0, 0.0);
                    self.refresh_cpu_activity(t, &gpu, &cpu, &mut spin_start, &mut spin_intervals);
                } else {
                    self.refresh_activity(t, &gpu, &cpu, &mut spin_start, &mut spin_intervals);
                }

                gpu.skip_empty(|s| self.gpu_seg_duration(s));
                cpu.skip_empty(|s| self.cpu_seg_duration(s));
                if gpu.done() && cpu.done() {
                    break;
                }

                // Plan the next event: earliest of segment completions and
                // the DVFS tick. A pending reclock stall preempts the GPU's
                // current segment.
                let stalled = gpu_stall_s > EPS_S;
                let gpu_dur = if stalled {
                    None
                } else {
                    gpu.current().map(|s| self.gpu_seg_duration(s))
                };
                let cpu_dur = cpu.current().map(|s| self.cpu_seg_duration(s));
                let gpu_rem = if stalled {
                    Some(gpu_stall_s)
                } else {
                    gpu_dur.map(|d| (1.0 - gpu.frac) * d)
                };
                let cpu_rem = cpu_dur.map(|d| (1.0 - cpu.frac) * d);
                let dvfs_rem = next_dvfs.map(|n| n.saturating_since(t).as_secs_f64());
                let mut dt = f64::INFINITY;
                for r in [gpu_rem, cpu_rem, dvfs_rem].into_iter().flatten() {
                    dt = dt.min(r);
                }
                assert!(dt.is_finite(), "no pending event but sides not done");

                // Quantize to the µs clock; never stall.
                let dt_q = SimDuration::from_secs_f64(dt).max(SimDuration::from_micros(1));
                let dt_s = dt_q.as_secs_f64();
                if stalled {
                    gpu_stall_s = (gpu_stall_s - dt_s).max(0.0);
                    gpu.busy_s += dt_s; // the host still waits on the card
                } else if let Some(d) = gpu_dur {
                    gpu.advance(dt_s, d);
                }
                if let Some(d) = cpu_dur {
                    cpu.advance(dt_s, d);
                }
                t += dt_q;
                events += 1;
                assert!(
                    events < self.config.max_events,
                    "event cap exceeded — runaway simulation"
                );
            }

            // Close any open spin interval at the barrier.
            if let Some(s) = spin_start.take() {
                if t > s {
                    spin_intervals.push((s, t));
                }
            }

            let digest_update = if self.config.functional {
                workload.execute(k, share)
            } else {
                0.0
            };
            let _ = digest_update;

            let record = IterationRecord {
                index: k,
                cpu_share: share,
                tc_s: cpu.busy_s,
                tg_s: gpu.busy_s,
                start: iter_start,
                end: t,
                energy_j: self.platform.total_energy_j(iter_start, t),
            };
            gpu_busy_total += gpu.busy_s;
            cpu_busy_total += cpu.busy_s;
            let info = IterationInfo {
                index: k,
                cpu_share: share,
                tc_s: cpu.busy_s,
                tg_s: gpu.busy_s,
            };
            let next_share = controller.on_iteration_end(&info, &mut self.platform, t);
            if divisible {
                share = next_share.clamp(0.0, 1.0);
            }
            iterations.push(record);
        }

        // Park activity at the end of the run.
        self.platform.set_gpu_activity(t, 0.0, 0.0);
        self.platform.set_cpu_activity(t, 0.0, 0);

        let digest = if self.config.functional { workload.digest() } else { 0.0 };
        RunReport {
            total_time: t - SimTime::ZERO,
            gpu_energy_j: self.platform.gpu_energy_j(SimTime::ZERO, t),
            cpu_energy_j: self.platform.cpu_energy_j(SimTime::ZERO, t),
            iterations,
            digest,
            gpu_busy_s: gpu_busy_total,
            cpu_busy_s: cpu_busy_total,
            spin_intervals,
            platform: self.platform,
        }
    }

    /// Wall duration of a GPU phase at the platform's current clocks
    /// (`max(roofline, host_floor)`).
    fn gpu_seg_duration(&self, phase: &GpuPhase) -> f64 {
        phase_gpu_timing(
            phase,
            self.platform.gpu().spec(),
            self.platform.gpu().core().current_mhz(),
            self.platform.gpu().mem().current_mhz(),
        )
        .wall_s
    }

    /// Duration of a CPU slice at the platform's current P-state.
    fn cpu_seg_duration(&self, slice: &CpuSlice) -> f64 {
        phase_cpu_time_s(
            slice,
            self.platform.cpu().spec(),
            self.platform.cpu().domain().current_mhz(),
        )
    }

    /// Writes the current busy fractions of both devices into the traces,
    /// and tracks CPU spin-wait intervals.
    fn refresh_activity(
        &mut self,
        t: SimTime,
        gpu: &SideExec<GpuPhase>,
        cpu: &SideExec<CpuSlice>,
        spin_start: &mut Option<SimTime>,
        spin_intervals: &mut Vec<(SimTime, SimTime)>,
    ) {
        // GPU activity follows the current phase's pipelined utilization.
        match gpu.current() {
            Some(phase) => {
                let timing = phase_gpu_timing(
                    phase,
                    self.platform.gpu().spec(),
                    self.platform.gpu().core().current_mhz(),
                    self.platform.gpu().mem().current_mhz(),
                );
                self.platform.set_gpu_activity(t, timing.u_core, timing.u_mem);
            }
            None => {
                self.platform.set_gpu_activity(t, 0.0, 0.0);
            }
        }
        self.refresh_cpu_activity(t, gpu, cpu, spin_start, spin_intervals);
    }

    /// The CPU part of the activity refresh (also used while the GPU is
    /// stalled reclocking).
    fn refresh_cpu_activity(
        &mut self,
        t: SimTime,
        gpu: &SideExec<GpuPhase>,
        cpu: &SideExec<CpuSlice>,
        spin_start: &mut Option<SimTime>,
        spin_intervals: &mut Vec<(SimTime, SimTime)>,
    ) {
        // CPU activity: computing, spin-waiting, or idle.
        let n_cores = self.platform.cpu().spec().n_cores;
        if !cpu.done() {
            self.exit_spin(t, spin_start, spin_intervals);
            self.platform.set_cpu_activity(t, 1.0, n_cores);
        } else if !gpu.done() {
            match self.config.comm_mode {
                CommMode::SynchronizedSpin => {
                    if spin_start.is_none() {
                        *spin_start = Some(t);
                    }
                    // The polling loop saturates the sensor but draws less
                    // than real computation.
                    self.platform
                        .set_cpu_activity_split(t, 1.0, self.config.spin_power_util, n_cores);
                }
                CommMode::Async => {
                    self.platform.set_cpu_activity(t, self.config.idle_cpu_util, n_cores);
                }
            }
        } else {
            self.exit_spin(t, spin_start, spin_intervals);
            self.platform.set_cpu_activity(t, 0.0, 0);
        }
    }

    fn exit_spin(&self, t: SimTime, spin_start: &mut Option<SimTime>, spin_intervals: &mut Vec<(SimTime, SimTime)>) {
        if let Some(s) = spin_start.take() {
            if t > s {
                spin_intervals.push((s, t));
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::controller::FixedController;
    use greengpu_workloads::hotspot::Hotspot;
    use greengpu_workloads::kmeans::KMeans;
    use greengpu_workloads::model::{iteration_cpu_time_s, iteration_gpu_time_s};

    fn run_fixed(share: f64) -> RunReport {
        let platform = Platform::best_performance_testbed();
        let mut wl = KMeans::small(1);
        let mut ctl = FixedController::new(share);
        HeteroRuntime::new(platform, RunConfig::default()).run(&mut wl, &mut ctl)
    }

    #[test]
    fn gpu_only_run_completes_with_positive_energy() {
        let report = run_fixed(0.0);
        assert_eq!(report.iterations.len(), 5);
        assert!(report.total_energy_j() > 0.0);
        assert!(report.total_time.as_secs_f64() > 0.0);
        assert!(report.gpu_busy_s > 0.0);
        assert_eq!(report.cpu_busy_s, 0.0);
    }

    #[test]
    fn measured_times_match_cost_model() {
        let report = run_fixed(0.0);
        let wl = KMeans::small(1);
        let expected = iteration_gpu_time_s(&wl.phases(0), report.platform.gpu().spec(), 576.0, 900.0);
        let tg = report.iterations[0].tg_s;
        assert!((tg - expected).abs() / expected < 1e-3, "tg {tg} vs model {expected}");
    }

    #[test]
    fn split_run_measures_both_sides() {
        let report = run_fixed(0.5);
        let it = &report.iterations[0];
        assert!(it.tc_s > 0.0 && it.tg_s > 0.0);
        let wl = KMeans::small(1);
        let tc_full = iteration_cpu_time_s(&wl.phases(0), report.platform.cpu().spec(), 2800.0);
        assert!(
            (it.tc_s - 0.5 * tc_full).abs() / tc_full < 1e-3,
            "tc {} vs {}",
            it.tc_s,
            0.5 * tc_full
        );
    }

    #[test]
    fn iteration_wall_time_is_max_of_sides() {
        let report = run_fixed(0.5);
        for it in &report.iterations {
            let wall = it.duration_s();
            let slower = it.tc_s.max(it.tg_s);
            assert!((wall - slower).abs() < 1e-3, "wall {wall} vs slower side {slower}");
        }
    }

    #[test]
    fn spin_mode_records_wait_intervals_when_cpu_finishes_first() {
        // With a tiny CPU share the CPU finishes long before the GPU and
        // spins.
        let report = run_fixed(0.05);
        assert!(report.spin_seconds() > 0.0, "expected spin-wait time");
        // Spin must not exceed total time.
        assert!(report.spin_seconds() <= report.total_time.as_secs_f64());
    }

    #[test]
    fn async_mode_saves_cpu_energy_vs_spin() {
        let mut wl1 = KMeans::small(1);
        let mut wl2 = KMeans::small(1);
        let mut ctl1 = FixedController::new(0.0);
        let mut ctl2 = FixedController::new(0.0);
        let spin =
            HeteroRuntime::new(Platform::best_performance_testbed(), RunConfig::default()).run(&mut wl1, &mut ctl1);
        let idle = HeteroRuntime::new(
            Platform::best_performance_testbed(),
            RunConfig::default().with_async_comm(),
        )
        .run(&mut wl2, &mut ctl2);
        assert!(
            idle.cpu_energy_j < spin.cpu_energy_j * 0.95,
            "async {} vs spin {}",
            idle.cpu_energy_j,
            spin.cpu_energy_j
        );
        // Same wall time either way.
        assert_eq!(idle.total_time, spin.total_time);
    }

    #[test]
    fn functional_execution_produces_real_digest() {
        let report = run_fixed(0.3);
        let mut reference = KMeans::small(1);
        for i in 0..reference.iterations() {
            reference.execute(i, 0.3);
        }
        let rel = (report.digest - reference.digest()).abs() / reference.digest().abs();
        assert!(
            rel < 1e-12,
            "runtime digest {} vs reference {}",
            report.digest,
            reference.digest()
        );
    }

    #[test]
    fn sweep_mode_skips_functional_execution() {
        let platform = Platform::best_performance_testbed();
        let mut wl = KMeans::small(1);
        let mut ctl = FixedController::new(0.0);
        let report = HeteroRuntime::new(platform, RunConfig::sweep()).run(&mut wl, &mut ctl);
        assert_eq!(report.digest, 0.0);
        assert!(report.total_energy_j() > 0.0);
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run_fixed(0.25);
        let b = run_fixed(0.25);
        assert_eq!(a.total_time, b.total_time);
        assert_eq!(a.total_energy_j(), b.total_energy_j());
        assert_eq!(a.digest, b.digest);
    }

    #[test]
    fn balanced_share_minimizes_wall_time_for_hotspot() {
        // Hotspot's balance point is ~0.5; the wall time at r=0.5 must beat
        // both extremes.
        let time_at = |r: f64| {
            let mut wl = Hotspot::paper(1);
            let mut ctl = FixedController::new(r);
            HeteroRuntime::new(Platform::best_performance_testbed(), RunConfig::sweep())
                .run(&mut wl, &mut ctl)
                .total_time
                .as_secs_f64()
        };
        let t0 = time_at(0.0);
        let t50 = time_at(0.5);
        let t90 = time_at(0.9);
        assert!(t50 < t0 * 0.7, "t50 {t50} vs t0 {t0}");
        assert!(t50 < t90 * 0.7, "t50 {t50} vs t90 {t90}");
    }

    #[test]
    fn energy_sweep_has_interior_minimum_for_kmeans() {
        // Fig. 2's headline shape: some CPU share beats GPU-only.
        let energy_at = |r: f64| {
            let mut wl = KMeans::paper(1);
            let mut ctl = FixedController::new(r);
            HeteroRuntime::new(Platform::best_performance_testbed(), RunConfig::sweep())
                .run(&mut wl, &mut ctl)
                .total_energy_j()
        };
        let e0 = energy_at(0.0);
        let e15 = energy_at(0.15);
        let e60 = energy_at(0.60);
        assert!(e15 < e0, "15% CPU share should beat GPU-only: {e15} vs {e0}");
        assert!(e15 < e60, "15% should beat 60%: {e15} vs {e60}");
    }
}

#[cfg(test)]
mod reclock_tests {
    use super::*;
    use crate::controller::{Controller, IterationInfo};
    use greengpu_sim::{SimDuration, SimTime};
    use greengpu_workloads::kmeans::KMeans;

    /// A controller that flips the GPU between two level pairs on every
    /// tick — worst-case actuation churn.
    struct Thrasher;

    impl Controller for Thrasher {
        fn initial_share(&self) -> f64 {
            0.0
        }
        fn dvfs_period(&self) -> Option<SimDuration> {
            Some(SimDuration::from_secs(3))
        }
        fn on_dvfs_tick(&mut self, platform: &mut Platform, now: SimTime) {
            let next = if platform.gpu().core().current_level() == 5 {
                4
            } else {
                5
            };
            platform.set_gpu_levels(now, next, next);
        }
        fn on_iteration_end(&mut self, _: &IterationInfo, _: &mut Platform, _: SimTime) -> f64 {
            0.0
        }
    }

    fn run_with_stall(stall_s: f64) -> RunReport {
        let mut cfg = RunConfig::sweep();
        cfg.reclock_stall_s = stall_s;
        let mut wl = KMeans::small(1);
        let mut ctl = Thrasher;
        HeteroRuntime::new(Platform::best_performance_testbed(), cfg).run(&mut wl, &mut ctl)
    }

    #[test]
    fn zero_stall_is_the_default_and_free() {
        let base = run_with_stall(0.0);
        let cfg_default = RunConfig::default();
        assert_eq!(cfg_default.reclock_stall_s, 0.0);
        assert!(base.total_time.as_secs_f64() > 0.0);
    }

    #[test]
    fn stall_lengthens_runs_proportionally_to_transitions() {
        let base = run_with_stall(0.0);
        let stalled = run_with_stall(0.5);
        let delta = stalled.total_time.as_secs_f64() - base.total_time.as_secs_f64();
        assert!(delta > 0.0, "stall had no effect");
        // The thrasher reclocks every 3 s tick; the added time should be
        // roughly 0.5 s per tick of the base run (each stall also delays
        // subsequent ticks, so allow slack).
        let ticks = (base.total_time.as_secs_f64() / 3.0).floor();
        assert!(delta > 0.4 * ticks * 0.5, "delta {delta} vs ~{} expected", ticks * 0.5);
    }

    #[test]
    fn stall_time_draws_idle_power() {
        // Mean GPU power over the stalled run must be below the unstalled
        // run's (idle stretches at the same total work).
        let base = run_with_stall(0.0);
        let stalled = run_with_stall(1.0);
        let p_base = base.gpu_energy_j / base.total_time.as_secs_f64();
        let p_stalled = stalled.gpu_energy_j / stalled.total_time.as_secs_f64();
        assert!(p_stalled < p_base, "stalled {p_stalled} W vs base {p_base} W");
    }

    #[test]
    fn steady_controller_pays_no_stall() {
        // A controller that converges stops paying: FixedController never
        // reclocks, so stall config is irrelevant.
        let mut cfg = RunConfig::sweep();
        cfg.reclock_stall_s = 5.0;
        let mut wl = KMeans::small(1);
        let mut ctl = crate::controller::FixedController::gpu_only();
        let stalled = HeteroRuntime::new(Platform::best_performance_testbed(), cfg).run(&mut wl, &mut ctl);
        let mut wl = KMeans::small(1);
        let mut ctl = crate::controller::FixedController::gpu_only();
        let base = HeteroRuntime::new(Platform::best_performance_testbed(), RunConfig::sweep()).run(&mut wl, &mut ctl);
        assert_eq!(stalled.total_time, base.total_time);
    }
}
