//! Custom workload: bring your own application under GreenGPU.
//!
//! Implements the [`Workload`] trait for a user-defined iterative kernel —
//! a batched matrix–vector training loop — and runs it under the two-tier
//! controller. This is the integration path a downstream user follows: (1)
//! describe each iteration's hardware demands, (2) implement the split
//! execution, (3) hand it to the runtime.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```

use greengpu::baselines;
use greengpu_hw::calib::geforce_8800_gtx;
use greengpu_sim::Pcg32;
use greengpu_suite::{division_trace, saving_pct, summarize_run};
use greengpu_workloads::model::host_floor_for_gap_fraction;
use greengpu_workloads::{CpuSlice, GpuPhase, PhaseCost, UtilClass, Workload, WorkloadProfile};

/// A toy "training" workload: each iteration multiplies a weight matrix by
/// a batch of input vectors and applies a gradient-style update. Rows of
/// the batch are independent, so the batch splits cleanly between CPU and
/// GPU.
struct BatchedMatVec {
    profile: WorkloadProfile,
    dim: usize,
    batch: usize,
    weights: Vec<f64>,
    inputs: Vec<f64>,
    initial_weights: Vec<f64>,
    iters: usize,
    /// Paper-scale batch charged to the cost model.
    cost_batch: f64,
}

impl BatchedMatVec {
    fn new(seed: u64, dim: usize, batch: usize, cost_batch: f64, iters: usize) -> Self {
        let mut rng = Pcg32::seeded(seed);
        let weights: Vec<f64> = (0..dim * dim).map(|_| rng.uniform(-0.1, 0.1)).collect();
        let inputs: Vec<f64> = (0..batch * dim).map(|_| rng.uniform(-1.0, 1.0)).collect();
        BatchedMatVec {
            profile: WorkloadProfile {
                name: "batched-matvec",
                enlargement: format!("{cost_batch} vectors of dim {dim}"),
                description: "User-defined training loop",
                core_class: UtilClass::Medium,
                mem_class: UtilClass::Low,
                divisible: true,
            },
            dim,
            batch,
            initial_weights: weights.clone(),
            weights,
            inputs,
            iters,
            cost_batch,
        }
    }

    /// Processes batch rows `[lo, hi)`, returning the per-weight gradient
    /// contribution.
    fn forward_range(&self, lo: usize, hi: usize) -> Vec<f64> {
        let d = self.dim;
        let mut grad = vec![0.0f64; d * d];
        for b in lo..hi {
            let x = &self.inputs[b * d..(b + 1) * d];
            // y = W x; accumulate an outer-product-style gradient.
            for i in 0..d {
                let row = &self.weights[i * d..(i + 1) * d];
                let y: f64 = row.iter().zip(x).map(|(w, xv)| w * xv).sum();
                let err = y.tanh() - 0.5;
                for (g, xv) in grad[i * d..(i + 1) * d].iter_mut().zip(x) {
                    *g += err * xv;
                }
            }
        }
        grad
    }
}

impl Workload for BatchedMatVec {
    fn profile(&self) -> &WorkloadProfile {
        &self.profile
    }

    fn iterations(&self) -> usize {
        self.iters
    }

    fn phases(&self, _iter: usize) -> Vec<PhaseCost> {
        // 4 flops per weight per batch row (matvec + gradient), streaming
        // the batch once; a medium-core signature like kmeans.
        let d = self.dim as f64;
        let ops = self.cost_batch * d * d * 4.0;
        let bytes = self.cost_batch * d * 12.0;
        let mut gpu = GpuPhase::new("train-step", ops, bytes, 0.45, 0.55, 0.0);
        gpu.host_floor_s = host_floor_for_gap_fraction(&gpu, &geforce_8800_gtx(), 0.35);
        let cpu = CpuSlice {
            ops: ops * 0.85,
            bytes: bytes * 0.5,
            eff: 0.65,
        };
        vec![PhaseCost { gpu, cpu }]
    }

    fn execute(&mut self, _iter: usize, cpu_share: f64) -> f64 {
        let split = ((self.batch as f64) * cpu_share.clamp(0.0, 1.0)).round() as usize;
        // CPU side takes the first rows, GPU the rest; gradients merge by
        // summation — split-invariant.
        let g_cpu = self.forward_range(0, split);
        let g_gpu = self.forward_range(split, self.batch);
        let lr = 1e-3 / self.batch as f64;
        for (w, (a, b)) in self.weights.iter_mut().zip(g_cpu.iter().zip(&g_gpu)) {
            *w -= lr * (a + b);
        }
        self.digest()
    }

    fn digest(&self) -> f64 {
        self.weights.iter().sum()
    }

    fn reset(&mut self) {
        self.weights.copy_from_slice(&self.initial_weights);
    }
}

fn main() {
    println!("GreenGPU custom-workload integration — batched matvec training\n");

    let make = || BatchedMatVec::new(11, 64, 512, 2.0e8, 10);

    let default = baselines::run_best_performance(&mut make());
    let green = baselines::run_greengpu(&mut make());

    println!("{}", summarize_run("default (all-GPU, peak)", &default));
    println!("{}", summarize_run("GreenGPU (two tiers)", &green));
    println!("\nenergy saving: {:.2}%", saving_pct(&default, &green));
    println!("\ndivision trace:");
    print!("{}", division_trace(&green));

    let rel = ((green.digest - default.digest) / default.digest).abs();
    assert!(rel < 1e-9, "training result changed under management: {rel}");
    println!("trained weights identical under both policies ✓");
}
