//! Policy tuning: sweep the WMA's α/φ/β knobs on a fluctuating workload
//! and report the energy/performance trade-off each setting lands on —
//! the experimental procedure the paper uses to derive α_c = 0.15,
//! α_m = 0.02, φ = 0.3, β = 0.2 (§V-A: "derived from experiments").
//!
//! ```text
//! cargo run --release --example policy_tuning
//! ```

use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::wma::WmaParams;
use greengpu::GreenGpuConfig;
use greengpu_runtime::RunConfig;
use greengpu_workloads::streamcluster::StreamCluster;

fn evaluate(params: WmaParams) -> (f64, f64) {
    let seed = 3;
    let base = run_best_performance_with(&mut StreamCluster::paper(seed), RunConfig::sweep());
    let cfg = GreenGpuConfig {
        wma_params: params,
        ..GreenGpuConfig::scaling_only()
    };
    let ours = run_with_config(&mut StreamCluster::paper(seed), cfg, RunConfig::sweep());
    let saving = (1.0 - ours.gpu_energy_j / base.gpu_energy_j) * 100.0;
    let slowdown = (ours.total_time.as_secs_f64() / base.total_time.as_secs_f64() - 1.0) * 100.0;
    (saving, slowdown)
}

fn main() {
    println!("GreenGPU policy tuning — WMA parameter sweep on streamcluster\n");
    println!("{:<34} {:>14} {:>12}", "parameters", "GPU saving", "slowdown");

    let show = |label: &str, p: WmaParams| {
        let (saving, slowdown) = evaluate(p);
        println!("{label:<34} {saving:>13.2}% {slowdown:>11.2}%");
    };

    show("paper defaults", WmaParams::default());

    println!("\nα_core (performance↔energy bias, core domain):");
    for alpha_core in [0.02, 0.15, 0.40, 0.80] {
        show(
            &format!("  alpha_core = {alpha_core}"),
            WmaParams {
                alpha_core,
                ..WmaParams::default()
            },
        );
    }

    println!("\nα_mem (memory domain):");
    for alpha_mem in [0.02, 0.15, 0.40] {
        show(
            &format!("  alpha_mem = {alpha_mem}"),
            WmaParams {
                alpha_mem,
                ..WmaParams::default()
            },
        );
    }

    println!("\nφ (core/memory loss balance):");
    for phi in [0.1, 0.3, 0.7, 0.9] {
        show(
            &format!("  phi = {phi}"),
            WmaParams {
                phi,
                ..WmaParams::default()
            },
        );
    }

    println!("\nβ (per-interval penalty damping):");
    for beta in [0.05, 0.2, 0.5, 0.9] {
        show(
            &format!("  beta = {beta}"),
            WmaParams {
                beta,
                ..WmaParams::default()
            },
        );
    }

    println!("\nhistory λ (effective memory of the weight table):");
    for history in [0.5, 0.8, 0.95, 1.0] {
        show(
            &format!("  history = {history}"),
            WmaParams {
                history,
                ..WmaParams::default()
            },
        );
    }

    println!("\nReading: larger α chases energy harder (more throttling, more slowdown);");
    println!("λ = 1.0 is verbatim Eq. 4 — sluggish on fluctuating workloads like this one.");
}
