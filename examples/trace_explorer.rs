//! Trace explorer: render the Fig. 5 experiment — the frequency-scaling
//! tier running streamcluster — as terminal charts, and poke the same
//! run through the NVML-style facade.
//!
//! ```text
//! cargo run --release --example trace_explorer
//! ```

use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_hw::nvml::{ClockType, NvmlDevice};
use greengpu_runtime::RunConfig;
use greengpu_sim::plot::{band_chart, bucketize, trace_sparkline};
use greengpu_sim::SimTime;
use greengpu_workloads::streamcluster::StreamCluster;

const WIDTH: usize = 72;

fn main() {
    println!("GreenGPU trace explorer — streamcluster under the frequency-scaling tier\n");

    let ours = run_with_config(
        &mut StreamCluster::paper(5),
        GreenGpuConfig::scaling_only(),
        RunConfig::sweep(),
    );
    let base = run_best_performance_with(&mut StreamCluster::paper(5), RunConfig::sweep());

    let end = SimTime::ZERO + ours.total_time;
    let gpu = ours.platform.gpu();

    println!("window: 0 .. {:.0} s, {} buckets\n", end.as_secs_f64(), WIDTH);
    println!(
        "core util  {}",
        trace_sparkline(gpu.u_core_trace(), SimTime::ZERO, end, WIDTH)
    );
    println!(
        "core MHz   {}",
        trace_sparkline(gpu.core().trace(), SimTime::ZERO, end, WIDTH)
    );
    println!(
        "mem util   {}",
        trace_sparkline(gpu.u_mem_trace(), SimTime::ZERO, end, WIDTH)
    );
    println!(
        "mem MHz    {}",
        trace_sparkline(gpu.mem().trace(), SimTime::ZERO, end, WIDTH)
    );
    println!();

    let power = bucketize(ours.platform.gpu_meter().trace(), SimTime::ZERO, end, WIDTH);
    println!("{}", band_chart("GPU power under GreenGPU scaling (W)", &power, 6));
    let base_end = SimTime::ZERO + base.total_time;
    let base_power = bucketize(base.platform.gpu_meter().trace(), SimTime::ZERO, base_end, WIDTH);
    println!("{}", band_chart("GPU power under best-performance (W)", &base_power, 6));

    // The same trace through the NVML vocabulary a deployment would use.
    let mut dev = NvmlDevice::open();
    println!("NVML view at t = 60 s:");
    let u = dev.utilization_rates(&ours.platform, SimTime::from_secs(60));
    println!("  utilization.gpu    = {:>3} %", u.gpu);
    println!("  utilization.memory = {:>3} %", u.memory);
    println!(
        "  clocks.gr / clocks.mem = {} / {} MHz",
        dev.clock_info(&ours.platform, ClockType::Graphics),
        dev.clock_info(&ours.platform, ClockType::Memory),
    );
    println!(
        "  power.draw = {:.1} W, total energy = {:.1} kJ",
        dev.power_usage_mw(&ours.platform, SimTime::from_secs(60)) as f64 / 1000.0,
        dev.total_energy_consumption_mj(&ours.platform, end) as f64 / 1e6,
    );

    let saving = (1.0 - ours.gpu_energy_j / base.gpu_energy_j) * 100.0;
    let dt = (ours.total_time.as_secs_f64() / base.total_time.as_secs_f64() - 1.0) * 100.0;
    println!("\nGPU energy saving vs best-performance: {saving:.2}% at {dt:+.2}% execution time");
}
