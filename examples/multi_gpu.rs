//! Multi-GPU scaling: generalize GreenGPU's division tier across several
//! cards — the "one pthread for one GPU" structure the paper's runtime
//! anticipates (§VI).
//!
//! Three scenarios: scale-out over 1/2/4 identical cards, a heterogeneous
//! pair (one card down-clocked 30 %), and the per-card WMA scaler running
//! on top of the multi-device division.
//!
//! ```text
//! cargo run --release --example multi_gpu
//! ```

use greengpu::wma::{PerGpuWma, WmaParams};
use greengpu_hw::calib::{geforce_8800_gtx, phenom_ii_x2};
use greengpu_runtime::multi::{run_multi, MultiConfig, MultiDivision, MultiPlatform, NoScaler};
use greengpu_sim::SimDuration;
use greengpu_workloads::kmeans::KMeans;
use greengpu_workloads::nbody::NBody;

fn main() {
    println!("GreenGPU multi-GPU extension — kmeans across several cards\n");

    // --- Scale-out over identical cards -----------------------------
    println!("scale-out (division tier balancing CPU + N cards):");
    println!(
        "{:<8} {:>10} {:>12} {:>24}",
        "cards", "time (s)", "energy (kJ)", "final shares [cpu, gpus…]"
    );
    for n in [1usize, 2, 4] {
        let report = run_multi(
            MultiPlatform::homogeneous(n),
            &mut KMeans::paper(9),
            MultiDivision::gpus_even(n),
            MultiConfig::default(),
            &mut NoScaler,
        );
        let last = report.iterations.last().unwrap();
        let shares: Vec<String> = last.shares.iter().map(|s| format!("{:.0}%", s * 100.0)).collect();
        println!(
            "{:<8} {:>10.1} {:>12.1} {:>24}",
            n,
            report.total_time.as_secs_f64(),
            report.total_energy_j / 1e3,
            shares.join(" / "),
        );
    }
    println!("(speedup comes from the division tier alone — no code changes in the workload)\n");

    // --- Heterogeneous pair ------------------------------------------
    let mut slow = geforce_8800_gtx();
    slow.core_levels_mhz = slow.core_levels_mhz.iter().map(|f| f * 0.7).collect();
    slow.mem_levels_mhz = slow.mem_levels_mhz.iter().map(|f| f * 0.7).collect();
    slow.name = "GeForce (down-clocked 30%)".to_string();
    let report = run_multi(
        MultiPlatform::new(vec![geforce_8800_gtx(), slow], phenom_ii_x2()),
        &mut NBody::paper(9),
        MultiDivision::gpus_even(2),
        MultiConfig::default(),
        &mut NoScaler,
    );
    let last = report.iterations.last().unwrap();
    println!("heterogeneous pair on nbody (card 1 down-clocked 30%):");
    println!(
        "  final shares: cpu {:.0}%, fast card {:.0}%, slow card {:.0}%",
        last.shares[0] * 100.0,
        last.shares[1] * 100.0,
        last.shares[2] * 100.0
    );
    println!(
        "  completion times: {:?} s — the balancer feeds each card in proportion to its speed\n",
        last.times_s
            .iter()
            .map(|t| (t * 10.0).round() / 10.0)
            .collect::<Vec<_>>()
    );

    // --- Division + per-card frequency scaling ------------------------
    let mut scaler = PerGpuWma::new(2, WmaParams::default());
    let cfg = MultiConfig {
        dvfs_period: Some(SimDuration::from_secs(3)),
        ..MultiConfig::default()
    };
    let unscaled = run_multi(
        MultiPlatform::homogeneous(2),
        &mut KMeans::paper(9),
        MultiDivision::gpus_even(2),
        MultiConfig::default(),
        &mut NoScaler,
    );
    let scaled = run_multi(
        MultiPlatform::homogeneous(2),
        &mut KMeans::paper(9),
        MultiDivision::gpus_even(2),
        cfg,
        &mut scaler,
    );
    println!("two tiers on two cards (division + per-card WMA):");
    println!(
        "  peak clocks: {:.1} kJ;  with per-card scaling: {:.1} kJ ({:.2}% saved)",
        unscaled.total_energy_j / 1e3,
        scaled.total_energy_j / 1e3,
        (1.0 - scaled.total_energy_j / unscaled.total_energy_j) * 100.0
    );
    for g in 0..2 {
        println!(
            "  card {g} settled at core {} MHz / mem {} MHz",
            scaled.platform.gpu(g).core().current_mhz(),
            scaled.platform.gpu(g).mem().current_mhz()
        );
    }
}
