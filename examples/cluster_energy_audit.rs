//! Cluster energy audit: estimate what GreenGPU would save across a
//! full mixed-workload node — the paper's motivating scenario (Tianhe-1A's
//! $2.7 M annual electricity bill).
//!
//! Runs every Table II workload under four policies and prints a
//! fleet-level report: per-workload savings and the aggregate picture for
//! a node that cycles through the whole suite.
//!
//! ```text
//! cargo run --release --example cluster_energy_audit
//! ```

use greengpu::baselines::{run_best_performance_with, run_with_config};
use greengpu::GreenGpuConfig;
use greengpu_runtime::RunConfig;
use greengpu_workloads::registry;

struct AuditRow {
    name: &'static str,
    default_j: f64,
    scaling_j: f64,
    division_j: f64,
    green_j: f64,
    divisible: bool,
}

impl AuditRow {
    /// The cheapest policy for this workload.
    fn best(&self) -> (&'static str, f64) {
        let mut best = ("default", self.default_j);
        for (name, j) in [
            ("scaling", self.scaling_j),
            ("division", self.division_j),
            ("GreenGPU", self.green_j),
        ] {
            if j < best.1 {
                best = (name, j);
            }
        }
        best
    }
}

fn main() {
    println!("GreenGPU cluster energy audit — full Table II suite, four policies\n");
    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>12}  {:>8}",
        "workload", "default (J)", "scaling (J)", "division (J)", "GreenGPU (J)", "saving"
    );

    let seed = 7;
    let mut rows = Vec::new();
    for name in registry::TABLE2_NAMES {
        let run = |cfg: Option<GreenGpuConfig>| {
            let mut wl = registry::by_name(name, seed).expect("registered");
            match cfg {
                None => run_best_performance_with(wl.as_mut(), RunConfig::sweep()),
                Some(c) => run_with_config(wl.as_mut(), c, RunConfig::sweep()),
            }
        };
        let default = run(None);
        let scaling = run(Some(GreenGpuConfig::scaling_only()));
        let division = run(Some(GreenGpuConfig::division_only()));
        let green = run(Some(GreenGpuConfig::holistic()));
        let divisible = registry::by_name(name, seed).unwrap().profile().divisible;
        let row = AuditRow {
            name,
            default_j: default.total_energy_j(),
            scaling_j: scaling.total_energy_j(),
            division_j: division.total_energy_j(),
            green_j: green.total_energy_j(),
            divisible,
        };
        let (best_name, _) = row.best();
        println!(
            "{:<14} {:>12.0} {:>12.0} {:>12.0} {:>12.0}  {:>7.2}%  best: {}{}",
            row.name,
            row.default_j,
            row.scaling_j,
            row.division_j,
            row.green_j,
            (1.0 - row.green_j / row.default_j) * 100.0,
            best_name,
            if row.divisible { "" } else { " (not divisible)" },
        );
        rows.push(row);
    }

    let total = |f: fn(&AuditRow) -> f64| rows.iter().map(f).sum::<f64>();
    let (d, s, v, g) = (
        total(|r| r.default_j),
        total(|r| r.scaling_j),
        total(|r| r.division_j),
        total(|r| r.green_j),
    );
    println!("\nnode total for one pass over the suite:");
    println!("  default          {d:>12.0} J");
    println!("  scaling-only     {s:>12.0} J  ({:.2}% saved)", (1.0 - s / d) * 100.0);
    println!("  division-only    {v:>12.0} J  ({:.2}% saved)", (1.0 - v / d) * 100.0);
    println!("  GreenGPU         {g:>12.0} J  ({:.2}% saved)", (1.0 - g / d) * 100.0);
    let p: f64 = rows.iter().map(|r| r.best().1).sum();
    println!(
        "  policy-aware     {p:>12.0} J  ({:.2}% saved — pick the best policy per workload)",
        (1.0 - p / d) * 100.0
    );
    println!();
    println!("Note: workloads with many short iterations (nbody, QG, srad_v2) lose to the");
    println!("division tier's convergence overhead — consistent with the paper deploying");
    println!("division only on iteration-heavy kmeans and hotspot.");

    // Scale to the fleet: a 1 000-node cluster running this mix around the
    // clock at $0.10/kWh.
    let node_w_default = d / rows.len() as f64; // rough, per-suite-pass joules
    let _ = node_w_default;
    let saving_j = d - g;
    let suite_passes_per_day = 86_400.0 / (d / 300.0); // assume ~300 W node draw
    let kwh_saved_per_node_day = saving_j * suite_passes_per_day / 3.6e6;
    println!(
        "\nat this mix, a 1000-node cluster saves ≈ {:.0} kWh/day (≈ ${:.0}/year at $0.10/kWh)",
        kwh_saved_per_node_day * 1000.0,
        kwh_saved_per_node_day * 1000.0 * 365.0 * 0.10
    );
}
