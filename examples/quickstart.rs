//! Quickstart: run a workload under GreenGPU and compare against the
//! Rodinia default (all work on the GPU, peak clocks).
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use greengpu::baselines;
use greengpu_suite::{division_trace, saving_pct, summarize_run};
use greengpu_workloads::kmeans::KMeans;

fn main() {
    println!("GreenGPU quickstart — kmeans (paper preset, 988 040 points)\n");

    // The Rodinia default: everything on the GPU, both domains at peak.
    let default = baselines::run_best_performance(&mut KMeans::paper(42));
    // The full two-tier GreenGPU controller.
    let green = baselines::run_greengpu(&mut KMeans::paper(42));

    println!("{}", summarize_run("default (all-GPU, peak)", &default));
    println!("{}", summarize_run("GreenGPU (two tiers)", &green));
    println!("\nenergy saving: {:.2}%", saving_pct(&default, &green));

    println!("\ndivision trace (tier 1 converging from the 30% start):");
    print!("{}", division_trace(&green));

    let gpu = green.platform.gpu();
    println!(
        "final GPU clocks chosen by tier 2: core {} MHz, memory {} MHz",
        gpu.core().current_mhz(),
        gpu.mem().current_mhz()
    );

    // The functional result is identical under both policies — energy
    // management never changes the computation.
    assert!(
        ((green.digest - default.digest) / default.digest).abs() < 1e-9,
        "policies must not change numerical results"
    );
    println!("\nfunctional digest matches the unmanaged run ✓");
}
